(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DESIGN.md experiments E1-E14) and times the algorithms
   with Bechamel (E9).

   Scale knobs (environment):
     DCN_BENCH_QUICK=1   small network (fat-tree k=4) and small counts
     DCN_BENCH_SEEDS=n   number of workload seeds per point (default 3;
                         the paper uses 10)

   Observability (environment):
     DCN_BENCH_REPORT=f  write per-experiment machine-readable results
                         (JSON) to f on exit
     DCN_BENCH_TRACE=f   write the structured event trace of the whole
                         run (JSON) to f on exit

   Regression gate (environment):
     DCN_BENCH_BASELINE=f   diff the fresh report against the committed
                            baseline report f and exit non-zero on a
                            mismatch (see EXPERIMENTS.md)
     DCN_BENCH_TOLERANCE=x  relative tolerance for numeric values in
                            the gate (default 1e-6)

   The paper's Figure 2 shape to look for: RS/LB low and flattening as
   the number of flows grows; SP+MCF/LB higher and growing; both
   effects stronger for alpha = 4. *)

let quick = Sys.getenv_opt "DCN_BENCH_QUICK" = Some "1"

let seeds =
  match Sys.getenv_opt "DCN_BENCH_SEEDS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 3)
  | None -> 3

(* Every section shares one pool sized by DCN_JOBS (default 1). *)
let pool = Dcn_engine.Pool.create ~jobs:(Dcn_engine.Pool.default_jobs ()) ()

module Json = Dcn_engine.Json

let report_path = Sys.getenv_opt "DCN_BENCH_REPORT"
let trace_path = Sys.getenv_opt "DCN_BENCH_TRACE"
let baseline_path = Sys.getenv_opt "DCN_BENCH_BASELINE"

let tolerance =
  match Sys.getenv_opt "DCN_BENCH_TOLERANCE" with
  | Some s -> (try float_of_string s with Failure _ -> 1e-6)
  | None -> 1e-6

let bench_trace =
  match trace_path with
  | None -> None
  | Some _ ->
    let t = Dcn_engine.Trace.create () in
    Dcn_engine.Trace.install t;
    Some t

(* Sections accumulate in run order; nothing is built unless a report
   was requested (or the baseline gate needs one to diff). *)
let collecting = report_path <> None || baseline_path <> None
let report_sections : (string * Json.t) list ref = ref []

(* Per-experiment stage metrics: a [Dcn_obs.Stage.since] cut at every
   section banner and at every [report] call, so each reported
   experiment gets only the stages it ran itself instead of everything
   accumulated by earlier sections.  The cumulative table at the end is
   untouched.  Stages only record while the metrics registry is enabled;
   E15 turns it on (after its telemetry-off leg) and leaves it on. *)
let last_metrics = ref []
let section_metrics : (string * Json.t) list ref = ref []

let metrics_cut () =
  let now = Dcn_obs.Stage.snapshot () in
  let delta = Dcn_obs.Stage.since ~base:!last_metrics now in
  last_metrics := now;
  delta

let report name json =
  let delta = metrics_cut () in
  if collecting then begin
    report_sections := (name, json) :: !report_sections;
    if delta <> [] then
      section_metrics :=
        (name, Dcn_obs.Stage.snapshot_to_json delta) :: !section_metrics
  end

(* Atomic, like bin/observe.ml: the gate must never read a truncated
   report. *)
let write_file path text =
  Dcn_util.Atomic_file.write ~path text;
  Printf.eprintf "wrote %s\n%!" path

(* ------------------------- regression gate ------------------------ *)

(* Diffs the fresh report against the committed baseline: every
   baseline section must still be present, every baseline metrics stage
   must still be recorded, and every numeric leaf of the baseline's
   experiment sections must match within [tolerance] (relative).  Wall
   times never enter the comparison: "metrics"/"section_metrics" are
   checked for stage presence only, and "seconds" keys are skipped.
   Returns the failure messages (empty = gate passed). *)
let gate ~baseline ~fresh =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let timing_keys = [ "metrics"; "section_metrics" ] in
  let numeric = function
    | Json.Int _ | Json.Float _ -> true
    | Json.Str ("inf" | "-inf" | "nan") -> true
    | _ -> false
  in
  let rec walk path b f =
    match (b, f) with
    | Json.Obj bf, Json.Obj ff ->
      List.iter
        (fun (k, bv) ->
          if k <> "seconds" then
            match List.assoc_opt k ff with
            | None -> fail "%s.%s: missing from fresh report" path k
            | Some fv -> walk (path ^ "." ^ k) bv fv)
        bf
    | Json.List bl, Json.List fl ->
      if List.length bl <> List.length fl then
        fail "%s: %d element(s) -> %d" path (List.length bl) (List.length fl)
      else
        List.iteri
          (fun i (bv, fv) -> walk (Printf.sprintf "%s[%d]" path i) bv fv)
          (List.combine bl fl)
    | bv, fv when numeric bv && numeric fv ->
      let x = Json.to_float bv and y = Json.to_float fv in
      let same =
        (Float.is_nan x && Float.is_nan y)
        || x = y
        || Float.abs (x -. y) <= tolerance *. Float.max (Float.abs x) (Float.abs y)
      in
      if not same then fail "%s: %.17g -> %.17g (tolerance %g)" path x y tolerance
    | Json.Str bs, Json.Str fs ->
      if bs <> fs then fail "%s: %S -> %S" path bs fs
    | Json.Bool bb, Json.Bool fb ->
      if bb <> fb then fail "%s: %b -> %b" path bb fb
    | Json.Null, Json.Null -> ()
    | _ -> fail "%s: shape changed" path
  in
  let stages = function
    | Json.List rows ->
      List.filter_map (fun r -> Option.map Json.to_str (Json.member "stage" r)) rows
    | _ -> []
  in
  (match (Json.member "metrics" baseline, Json.member "metrics" fresh) with
  | Some b, Some (Json.List (_ :: _) as f) ->
    List.iter
      (fun s ->
        if not (List.mem s (stages f)) then fail "metrics: stage %S disappeared" s)
      (stages b)
  | Some _, _ -> fail "metrics: missing or empty in fresh report"
  | None, _ -> ());
  List.iter
    (fun (k, bv) ->
      if not (List.mem k timing_keys) then
        match Json.member k fresh with
        | None -> fail "section %S missing from fresh report" k
        | Some fv -> walk k bv fv)
    (Json.to_obj baseline);
  List.rev !failures

let run_gate fresh_json =
  match baseline_path with
  | None -> ()
  | Some path ->
    let baseline =
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      try Json.of_string text
      with Failure m ->
        Printf.eprintf "bench gate: %s is not valid JSON: %s\n%!" path m;
        exit 1
    in
    (match gate ~baseline ~fresh:fresh_json with
    | [] -> Printf.printf "bench gate: OK (matches %s within %g)\n%!" path tolerance
    | failures ->
      Printf.eprintf "bench gate: %d regression(s) vs %s:\n" (List.length failures)
        path;
      List.iter (fun m -> Printf.eprintf "  %s\n" m) failures;
      Printf.eprintf "%!";
      exit 1)

let flush_observability () =
  (match bench_trace with
  | None -> ()
  | Some t ->
    Dcn_engine.Trace.uninstall ();
    write_file (Option.get trace_path)
      (Json.to_string ~pretty:true (Dcn_engine.Trace.to_json t)));
  if collecting then begin
    let json =
      Json.Obj
        (("command", Json.Str "bench")
         :: List.rev !report_sections
        @ [
            ("metrics", Dcn_obs.Stage.to_json ());
            ("section_metrics", Json.Obj (List.rev !section_metrics));
          ])
    in
    (match report_path with
    | Some path -> write_file path (Json.to_string ~pretty:true json)
    | None -> ());
    run_gate json
  end

let section title =
  ignore (metrics_cut ());
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title (String.make 72 '=')

(* --------------------------- E1 / E2 ------------------------------ *)

let fig2 alpha =
  section
    (Printf.sprintf "E%d. Figure 2, alpha = %g (RS vs SP+MCF vs LB, %d seed(s))"
       (if alpha = 2. then 1 else 2)
       alpha seeds);
  let params =
    if quick then Dcn_experiments.Fig2.quick_params ~alpha
    else Dcn_experiments.Fig2.default_params ~alpha
  in
  let params =
    { params with Dcn_experiments.Fig2.seeds = List.init seeds (fun i -> 1000 + i) }
  in
  let res =
    Dcn_experiments.Fig2.run
      ~progress:(fun msg -> Printf.eprintf "  [%s]\n%!" msg)
      ~pool params
  in
  print_endline (Dcn_experiments.Fig2.render res);
  report (Printf.sprintf "fig2_alpha%g" alpha) (Dcn_experiments.Fig2.to_json res)

(* ----------------------------- E3 --------------------------------- *)

let example1 () =
  section "E3. Example 1 / Figure 1 (closed-form check)";
  let graph = Dcn_topology.Builders.line 3 in
  let power = Dcn_power.Model.quadratic in
  let f1 = Dcn_flow.Flow.make ~id:1 ~src:0 ~dst:2 ~volume:6. ~release:2. ~deadline:4. in
  let f2 = Dcn_flow.Flow.make ~id:2 ~src:0 ~dst:1 ~volume:8. ~release:1. ~deadline:3. in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows:[ f1; f2 ] in
  let res = Dcn_core.Baselines.sp_mcf inst in
  let s2 = (8. +. (6. *. sqrt 2.)) /. 3. in
  Printf.printf "paper optimum : s1 = %.6f, s2 = %.6f\n" (s2 /. sqrt 2.) s2;
  Printf.printf "computed      : s1 = %.6f, s2 = %.6f\n"
    (Option.value ~default:nan (Dcn_core.Solution.find_rate res 1))
    (Option.value ~default:nan (Dcn_core.Solution.find_rate res 2));
  Printf.printf "energy        : %.6f (schedule integral %.6f)\n"
    res.Dcn_core.Solution.energy
    (Dcn_sched.Schedule.energy res.Dcn_core.Solution.schedule);
  report "example1" (Dcn_core.Serialize.solution_to_json res)

(* --------------------------- E4 / E5 ------------------------------ *)

let gadgets () =
  section "E4. Theorem 2 gadget (3-partition)";
  let tp = Dcn_experiments.Gadget_runs.three_partition () in
  print_endline (Dcn_experiments.Gadget_runs.render_three_partition tp);
  section "E5. Theorem 3 gadget (partition / inapproximability)";
  let p = Dcn_experiments.Gadget_runs.partition () in
  print_endline (Dcn_experiments.Gadget_runs.render_partition p);
  report "gadgets"
    (Json.Obj
       [
         ("three_partition", Dcn_experiments.Gadget_runs.three_partition_to_json tp);
         ("partition", Dcn_experiments.Gadget_runs.partition_to_json p);
       ])

(* ----------------------------- E6 --------------------------------- *)

let theorem4 () =
  section "E6. Theorem 4: Random-Schedule deadline guarantee (fluid simulation)";
  let graph = Dcn_topology.Builders.fat_tree 4 in
  let power = Dcn_power.Model.quadratic in
  let rows =
    List.map
      (fun seed ->
        let rng = Dcn_util.Prng.create seed in
        let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:30 () in
        let inst = Dcn_core.Instance.make ~graph ~power ~flows in
        let rs =
          Dcn_core.Random_schedule.solve
            ~config:
              {
                Dcn_core.Random_schedule.attempts = 20;
                fw_config = Dcn_experiments.Fig2.experiment_fw_config;
              }
            ~instance:inst
            ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
            ~deadline:Dcn_engine.Deadline.never ()
        in
        let report = Dcn_sim.Fluid.run rs.Dcn_core.Solution.schedule in
        [
          string_of_int seed;
          string_of_int (List.length flows);
          (if report.Dcn_sim.Fluid.all_deadlines_met then "met" else "MISSED");
          Printf.sprintf "%.2f" report.Dcn_sim.Fluid.max_rate;
          Printf.sprintf "%.1f" report.Dcn_sim.Fluid.energy;
        ])
      [ 11; 12; 13; 14; 15 ]
  in
  print_endline
    (Dcn_util.Table.render
       ~headers:[ "seed"; "flows"; "deadlines"; "max link rate"; "energy" ]
       ~rows ())

let packetization () =
  section "E6b. Packetisation: priority packet switching of DCFS schedules (Section III)";
  let graph = Dcn_topology.Builders.fat_tree 4 in
  let power = Dcn_power.Model.quadratic in
  let rng = Dcn_util.Prng.create 21 in
  let flows = Dcn_flow.Workload.paper_random ~rng ~graph ~n:12 () in
  let inst = Dcn_core.Instance.make ~graph ~power ~flows in
  let res = Dcn_core.Baselines.sp_mcf inst in
  let rows =
    List.map
      (fun packet_size ->
        let r =
          Dcn_sim.Packet.run ~config:{ Dcn_sim.Packet.packet_size }
            res.Dcn_core.Solution.schedule
        in
        [
          Printf.sprintf "%.2f" packet_size;
          (if r.Dcn_sim.Packet.all_delivered then "yes" else "NO");
          Printf.sprintf "%.4f" r.Dcn_sim.Packet.max_lateness;
          (if r.Dcn_sim.Packet.within_pipeline_slack then "yes" else "NO");
          string_of_int r.Dcn_sim.Packet.events;
          string_of_int r.Dcn_sim.Packet.max_queue;
        ])
      [ 2.0; 1.0; 0.5; 0.25; 0.1 ]
  in
  print_endline
    (Dcn_util.Table.render
       ~headers:
         [ "packet size"; "delivered"; "max lateness"; "within pipeline"; "events"; "max queue" ]
       ~rows ())

(* ----------------------------- E7 --------------------------------- *)

let ablations () =
  let module A = Dcn_experiments.Ablation in
  section "E7a. Ablation: power-down (sigma > 0)";
  let pd = A.power_down ~pool ~sigmas:[ 0.; 10.; 50.; 200. ] () in
  print_endline (A.render_power_down pd);
  section "E7b. Ablation: capacity stress (rounding redraws)";
  let cap = A.capacity_stress ~pool ~caps:[ infinity; 10.; 6.; 4. ] () in
  print_endline (A.render_capacity cap);
  section "E7c. Ablation: Most-Critical-First refinement of RS routes";
  let refi = A.refinement ~pool ~ns:[ 10; 20; 40 ] () in
  print_endline (A.render_refinement refi);
  section "E7d. Ablation: routing policies (SP vs ECMP vs Greedy-EAR vs Random-Schedule)";
  let rout = A.routing_comparison ~pool ~ns:[ 10; 20; 40 ] () in
  print_endline (A.render_routing rout);
  section "E7e. Ablation: lower-bound tightness (paper LB vs joint relaxation)";
  let lb = A.lb_tightness ~pool ~ns:[ 10; 20; 40 ] () in
  print_endline (A.render_lb lb);
  section "E7f. Ablation: flow splitting (Section II-B multi-path emulation)";
  let spl = A.splitting ~pool ~parts:[ 1; 2; 4; 8 ] () in
  print_endline (A.render_splitting spl);
  section "E7g. Ablation: discrete link speeds (rate adaptation)";
  let rl = A.rate_levels ~pool ~counts:[ 2; 4; 8; 16 ] () in
  print_endline (A.render_rate_levels rl);
  section "E7h. Ablation: online admission control under finite capacity";
  let adm = A.admission ~pool ~loads:[ 0.5; 1.; 2.; 4.; 8. ] () in
  print_endline (A.render_admission adm);
  section "E7i. Ablation: failure resilience (random cable failures)";
  let fl = A.failures ~pool ~counts:[ 0; 4; 8; 12 ] () in
  print_endline (A.render_failures fl);
  report "ablation"
    (Json.Obj
       [
         ("power_down", A.power_down_to_json pd);
         ("capacity", A.capacity_to_json cap);
         ("refinement", A.refinement_to_json refi);
         ("routing", A.routing_to_json rout);
         ("lb_tightness", A.lb_to_json lb);
         ("splitting", A.splitting_to_json spl);
         ("rate_levels", A.rate_levels_to_json rl);
         ("admission", A.admission_to_json adm);
         ("failures", A.failures_to_json fl);
       ])

(* ----------------------------- E8 --------------------------------- *)

let small_exact () =
  section "E8. Random-Schedule vs exact optimum (exhaustive routing)";
  let rows = Dcn_experiments.Small_exact.run ~seeds:[ 1; 2; 3; 4; 5; 6 ] () in
  print_endline (Dcn_experiments.Small_exact.render rows);
  report "small_exact" (Dcn_experiments.Small_exact.to_json rows)

let bounds_check () =
  section "E8b. Worst-case bounds vs measured approximation (Theorems 3/6)";
  print_endline
    (Dcn_experiments.Bounds_check.render
       (Dcn_experiments.Bounds_check.run ~ns:[ 10; 20; 40 ] ()))

let trace_eval () =
  section "E10. Extension: production-like traces (heavy-tailed, Poisson)";
  print_endline
    (Dcn_experiments.Trace_eval.render
       (Dcn_experiments.Trace_eval.run ~loads:[ 0.5; 1.; 2.; 4. ] ()))

(* ----------------------------- E9 --------------------------------- *)

let runtime_benchmarks () =
  section "E9. Runtime micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let graph4 = Dcn_topology.Builders.fat_tree 4 in
  let power = Dcn_power.Model.quadratic in
  let instance_of n seed =
    let rng = Dcn_util.Prng.create seed in
    let flows = Dcn_flow.Workload.paper_random ~rng ~graph:graph4 ~n () in
    Dcn_core.Instance.make ~graph:graph4 ~power ~flows
  in
  let inst20 = instance_of 20 5 and inst40 = instance_of 40 5 in
  let fw_cfg = Dcn_experiments.Fig2.experiment_fw_config in
  let mk_rs inst () =
    let rng = Dcn_util.Prng.create 1 in
    ignore
      (Dcn_core.Random_schedule.solve
         ~config:{ Dcn_core.Random_schedule.attempts = 5; fw_config = fw_cfg }
         ~instance:inst
         ~workspace:(Dcn_core.Solver_api.workspace ~rng ())
         ~deadline:Dcn_engine.Deadline.never ())
  in
  let mk_mcf inst () = ignore (Dcn_core.Baselines.sp_mcf inst) in
  let mk_fw n () =
    let rng = Dcn_util.Prng.create 2 in
    let hosts = Dcn_topology.Graph.hosts graph4 in
    let commodities =
      Array.init n (fun index ->
          let src = Dcn_util.Prng.pick rng hosts in
          let rec dst () =
            let d = Dcn_util.Prng.pick rng hosts in
            if d = src then dst () else d
          in
          Dcn_mcf.Commodity.make ~index ~src ~dst:(dst ())
            ~demand:(0.5 +. Dcn_util.Prng.float rng 2.))
    in
    ignore
      (Dcn_mcf.Frank_wolfe.solve ~config:fw_cfg
         {
           Dcn_mcf.Frank_wolfe.graph = graph4;
           commodities;
           cost = (fun x -> x *. x);
           cost_deriv = (fun x -> 2. *. x);
           capacity = infinity;
         })
  in
  let mk_yds n () =
    let rng = Dcn_util.Prng.create 3 in
    let jobs =
      List.init n (fun id ->
          let r = Dcn_util.Prng.uniform rng ~lo:0. ~hi:50. in
          let d = r +. 1. +. Dcn_util.Prng.uniform rng ~lo:0. ~hi:20. in
          Dcn_speed_scaling.Job.make ~id ~weight:(1. +. Dcn_util.Prng.float rng 9.)
            ~release:r ~deadline:d)
    in
    ignore (Dcn_speed_scaling.Yds.schedule jobs)
  in
  let tests =
    [
      Test.make ~name:"yds n=50" (Staged.stage (mk_yds 50));
      Test.make ~name:"frank-wolfe k=4 n=20" (Staged.stage (mk_fw 20));
      Test.make ~name:"most-critical-first n=20" (Staged.stage (mk_mcf inst20));
      Test.make ~name:"most-critical-first n=40" (Staged.stage (mk_mcf inst40));
      Test.make ~name:"random-schedule n=20" (Staged.stage (mk_rs inst20));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 2.) ~kde:None () in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analyzed = Analyze.all ols Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let time_ns =
              match Analyze.OLS.estimates ols_result with
              | Some [ t ] -> t
              | _ -> nan
            in
            [ name; Printf.sprintf "%.3f" (time_ns /. 1e6) ] :: acc)
          analyzed [])
      tests
  in
  print_endline
    (Dcn_util.Table.render ~headers:[ "algorithm"; "time (ms/run)" ]
       ~rows:(List.concat rows) ())

(* ----------------------------- E14 -------------------------------- *)

(* Kernel scaling: the same fractional MCF per fat-tree scale, solved
   by both Frank-Wolfe engines from identical inputs.  The flat-kernel
   run must reproduce the reference run bit for bit (loads and cost
   compared exactly — the kernel replays the reference's float
   operations), and the wall-time ratio is the tracked speedup.  All
   timings sit in a "seconds" subtree, which the baseline gate skips;
   the stable facts (scale, commodity count, iterations, cost,
   bit-identicality) are gated. *)
let kernel_scaling () =
  section "E14. Kernel scaling: flat-Bigarray Frank-Wolfe vs reference";
  let scales =
    (* (fat-tree k, commodities).  Quick keeps the gate cheap but still
       covers the k=16 target; the full run sweeps the ROADMAP scale
       goals with 10k-100k commodities. *)
    if quick then [ (4, 64); (8, 256); (16, 512) ]
    else [ (8, 10_000); (16, 25_000); (24, 50_000); (32, 100_000) ]
  in
  let power = Dcn_power.Model.quadratic in
  let piecewise = Dcn_core.Relaxation.piecewise_of power in
  let fw_cfg =
    {
      Dcn_mcf.Frank_wolfe.default_config with
      max_iters = (if quick then 20 else 8);
      line_search_iters = 24;
    }
  in
  let workspace = Dcn_mcf.Kernel.Workspace.create () in
  let rows, json_rows =
    List.split
      (List.map
         (fun (k, nc) ->
           let graph = Dcn_topology.Builders.fat_tree k in
           let rng = Dcn_util.Prng.create (1000 + k) in
           let hosts = Dcn_topology.Graph.hosts graph in
           let commodities =
             Array.init nc (fun index ->
                 let src = Dcn_util.Prng.pick rng hosts in
                 let rec dst () =
                   let d = Dcn_util.Prng.pick rng hosts in
                   if d = src then dst () else d
                 in
                 Dcn_mcf.Commodity.make ~index ~src ~dst:(dst ())
                   ~demand:(0.5 +. Dcn_util.Prng.float rng 2.))
           in
           let problem =
             {
               Dcn_mcf.Frank_wolfe.graph;
               commodities;
               cost = Dcn_power.Model.envelope power;
               cost_deriv = Dcn_power.Model.envelope_deriv power;
               capacity = power.Dcn_power.Model.cap;
             }
           in
           let time f =
             let t0 = Unix.gettimeofday () in
             let r = f () in
             (r, Unix.gettimeofday () -. t0)
           in
           (* Warm-up solve so the kernel arena is grown once and the
              timed runs measure the steady state (arena reuse). *)
           ignore
             (Dcn_mcf.Frank_wolfe.solve
                ~config:{ fw_cfg with max_iters = 2 }
                ~workspace ~piecewise problem);
           let kernel, kernel_s =
             time (fun () ->
                 Dcn_mcf.Frank_wolfe.solve ~config:fw_cfg ~workspace
                   ~piecewise problem)
           in
           let reference, reference_s =
             time (fun () ->
                 Dcn_mcf.Frank_wolfe.solve_reference ~config:fw_cfg problem)
           in
           let open Dcn_mcf.Frank_wolfe in
           let bit_identical =
             Int64.bits_of_float kernel.cost
             = Int64.bits_of_float reference.cost
             && Array.length kernel.loads = Array.length reference.loads
             && Array.for_all2
                  (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
                  kernel.loads reference.loads
           in
           let speedup = reference_s /. Float.max 1e-9 kernel_s in
           ( [
               string_of_int k;
               string_of_int nc;
               string_of_int kernel.iterations;
               Printf.sprintf "%.3f" kernel_s;
               Printf.sprintf "%.3f" reference_s;
               Printf.sprintf "%.2fx" speedup;
               (if bit_identical then "bit-identical" else "DIVERGES");
             ],
             Json.Obj
               [
                 ("k", Json.Int k);
                 ("commodities", Json.Int nc);
                 ("iterations", Json.Int kernel.iterations);
                 ("cost", Json.float kernel.cost);
                 ("bit_identical", Json.Bool bit_identical);
                 ( "seconds",
                   Json.Obj
                     [
                       ("kernel", Json.float kernel_s);
                       ("reference", Json.float reference_s);
                       ("speedup", Json.float speedup);
                     ] );
               ] ))
         scales)
  in
  print_endline
    (Dcn_util.Table.render
       ~headers:
         [
           "fat-tree k";
           "commodities";
           "iters";
           "kernel (s)";
           "reference (s)";
           "speedup";
           "agreement";
         ]
       ~rows ());
  report "kernel_scaling" (Json.List json_rows)

(* ---------------------- parallel scaling ------------------------- *)

(* Times the Figure-2 quick sweep at 1, 2 and 4 jobs, checks the three
   renders are byte-identical (the engine's determinism contract), and
   reports the measured speedup.  On a single-core container the speedup
   is expected to be ~1x; the check still exercises the pool. *)
let parallel_scaling () =
  section "E11. Parallel scaling (domain pool, Figure-2 quick sweep)";
  let params =
    {
      (Dcn_experiments.Fig2.quick_params ~alpha:2.) with
      Dcn_experiments.Fig2.flow_counts = [ 20; 40 ];
      seeds = List.init (min seeds 2) (fun i -> 1000 + i);
    }
  in
  let time_at jobs =
    Dcn_engine.Pool.with_pool ~jobs (fun pool ->
        let t0 = Unix.gettimeofday () in
        let res = Dcn_experiments.Fig2.run ~pool params in
        let dt = Unix.gettimeofday () -. t0 in
        (dt, Dcn_experiments.Fig2.render res))
  in
  let runs = List.map (fun jobs -> (jobs, time_at jobs)) [ 1; 2; 4 ] in
  let _, (t1, render1) = List.hd runs in
  let rows =
    List.map
      (fun (jobs, (dt, render)) ->
        [
          string_of_int jobs;
          Printf.sprintf "%.2f" dt;
          Printf.sprintf "%.2fx" (t1 /. dt);
          (if String.equal render render1 then "identical" else "DIFFERS");
        ])
      runs
  in
  print_endline
    (Dcn_util.Table.render
       ~headers:[ "jobs"; "wall (s)"; "speedup"; "output vs jobs=1" ]
       ~rows ());
  Printf.printf "(host has %d core(s) available)\n"
    (Domain.recommended_domain_count ())

(* ------------------------- serving sessions ----------------------- *)

(* A deterministic synthetic event stream through Dcn_serve.Session:
   arrivals/cancels/advances on line:5 under a finite cap.  Shared by
   E13 (incremental re-solve) and E15 (telemetry overhead). *)
let synthetic_session () =
  Dcn_serve.Session.create ~pool ~graph:(Dcn_topology.Builders.line 5)
    ~power:(Dcn_power.Model.make ~sigma:1. ~mu:1. ~alpha:2. ~cap:6. ())
    ~policy:Dcn_resilience.Repair.Drop_latest_deadline ~seed:7 ()

let synthetic_events n =
  let rng = Dcn_util.Prng.create 42 in
  let now = ref 0. and next_id = ref 1 and live = ref [] in
  List.init n (fun _ ->
      match Dcn_util.Prng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 | 5 ->
        let src = Dcn_util.Prng.int rng 5 in
        let dst = (src + 1 + Dcn_util.Prng.int rng 4) mod 5 in
        let release = !now +. Dcn_util.Prng.float rng 0.5 in
        let deadline = release +. 1.5 +. Dcn_util.Prng.float rng 4.5 in
        let f =
          Dcn_flow.Flow.make ~id:!next_id ~src ~dst
            ~volume:(0.5 +. Dcn_util.Prng.float rng 5.5)
            ~release ~deadline
        in
        incr next_id;
        live := f.Dcn_flow.Flow.id :: !live;
        Dcn_serve.Event.Flow_arrival f
      | 6 | 7 when !live <> [] ->
        let i = Dcn_util.Prng.int rng (List.length !live) in
        let id = List.nth !live i in
        live := List.filter (fun j -> j <> id) !live;
        Dcn_serve.Event.Flow_cancel { flow = id }
      | _ ->
        now := !now +. 0.3 +. Dcn_util.Prng.float rng 1.2;
        Dcn_serve.Event.Advance_clock { clock = !now })

(* The column to watch is re-solved vs total intervals — the
   incremental re-solve only rebuilds the timeline intervals each
   event's flow span overlaps, so "resolved" must stay strictly below
   "total" (the from-scratch cost), and every committed epoch must
   certify. *)
let serving () =
  section "E13. Serving: incremental re-solve per live event (Dcn_serve)";
  let n_events = if quick then 30 else 80 in
  let session = synthetic_session () in
  let events = synthetic_events n_events in
  let committed = ref 0 and degraded = ref 0 and rejected = ref 0 in
  let resolved = ref 0 and reused = ref 0 and uncertified = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun e ->
      let absorb (d : Dcn_serve.Session.detail) =
        resolved := !resolved + d.Dcn_serve.Session.resolved_intervals;
        reused := !reused + d.Dcn_serve.Session.reused_intervals;
        if d.Dcn_serve.Session.violations <> [] then incr uncertified
      in
      match Dcn_serve.Session.apply session e with
      | Dcn_serve.Session.Committed d -> incr committed; absorb d
      | Dcn_serve.Session.Degraded d -> incr degraded; absorb d
      | Dcn_serve.Session.Rejected _ -> incr rejected)
    events;
  let dt = Unix.gettimeofday () -. t0 in
  let total = !resolved + !reused in
  print_endline
    (Dcn_util.Table.render
       ~headers:[ "events"; "resolved"; "reused"; "total"; "incremental"; "ms/event" ]
       ~rows:
         [
           [
             string_of_int n_events;
             string_of_int !resolved;
             string_of_int !reused;
             string_of_int total;
             (if !resolved < total then "yes (resolved < total)" else "NO");
             Printf.sprintf "%.2f" (1000. *. dt /. float_of_int n_events);
           ];
         ]
       ());
  Printf.printf "epochs: %d committed, %d degraded, %d rejected, %d uncertified\n"
    !committed !degraded !rejected !uncertified;
  report "serve"
    (Json.Obj
       [
         ("events", Json.Int n_events);
         ("resolved_intervals", Json.Int !resolved);
         ("reused_intervals", Json.Int !reused);
         ("total_intervals", Json.Int total);
         ("incremental", Json.Bool (!resolved < total));
         ("uncertified_epochs", Json.Int !uncertified);
       ])

(* What the telemetry layer costs the serving path: the same synthetic
   stream applied twice, registry disabled (every Dcn_obs op is one
   branch after the enabled check) and enabled (counters, a latency
   histogram and a gauge refresh per event).  Must run before anything
   else enables the registry, and leaves it enabled — the per-section
   stage metrics above need it on.  Wall times stay under "seconds"
   keys so the report section is baseline-safe (the gate skips them). *)
let telemetry_overhead () =
  section "E15. Telemetry overhead on the serving path (Dcn_obs)";
  let n = if quick then 30 else 80 in
  let events = synthetic_events n in
  let time_run () =
    let session = synthetic_session () in
    let t0 = Unix.gettimeofday () in
    List.iter (fun e -> ignore (Dcn_serve.Session.apply session e)) events;
    Unix.gettimeofday () -. t0
  in
  (* Best of three per leg: one pass is ~10 ms here, well inside
     scheduler-jitter territory. *)
  let best () = Float.min (time_run ()) (Float.min (time_run ()) (time_run ())) in
  let off = best () in
  Dcn_obs.Registry.enable ();
  let on = best () in
  let row label dt =
    [
      label;
      string_of_int n;
      Printf.sprintf "%.2f" (1000. *. dt /. float_of_int n);
      Printf.sprintf "%.1f" (float_of_int n /. dt);
    ]
  in
  print_endline
    (Dcn_util.Table.render
       ~headers:[ "telemetry"; "events"; "ms/event"; "events/s" ]
       ~rows:[ row "off" off; row "on" on ]
       ());
  Printf.printf "overhead: %+.1f%% wall clock (expect noise level)\n"
    (if off > 0. then 100. *. (on -. off) /. off else 0.);
  report "telemetry_overhead"
    (Json.Obj
       [
         ("events", Json.Int n);
         ("off", Json.Obj [ ("seconds", Json.float off) ]);
         ("on", Json.Obj [ ("seconds", Json.float on) ]);
       ])

(* ----------------------------- E16 -------------------------------- *)

(* Coflow admission: a seeded shuffle/incast coflow trace walked in
   sigma order all-or-nothing by both variants, at a loose and a tight
   link capacity — the completion-rate / energy Pareto points the
   coflow layer exists to trace.  Every admitted set is re-verified by
   the conjunction certificate; an uncertified set fails the run.  Wall
   times stay under "seconds" keys (the gate skips them). *)
let coflow_admission () =
  section "E16. Coflow admission: sigma-order all-or-nothing (Dcn_coflow)";
  let graph = Dcn_topology.Builders.fat_tree 4 in
  let jobs = if quick then 6 else 16 in
  let cs =
    Dcn_coflow.Coflow.shuffle_trace
      ~rng:(Dcn_util.Prng.create 42)
      ~graph ~jobs ~horizon:(0., 10.) ()
  in
  let caps = [ ("loose", infinity); ("tight", 16.) ] in
  let rows, cells =
    List.split
      (List.concat_map
         (fun (regime, cap) ->
           let power = Dcn_power.Model.make ~sigma:1. ~mu:1. ~alpha:2. ~cap () in
           List.map
             (fun variant ->
               let t0 = Unix.gettimeofday () in
               let adm =
                 Dcn_coflow.Admission.run ~seed:42 ~pool ~variant ~graph ~power
                   cs
               in
               let dt = Unix.gettimeofday () -. t0 in
               let cert =
                 Dcn_coflow.Certificate.admission_result ~coflows:cs ~graph
                   ~power adm
               in
               if not cert.Dcn_coflow.Certificate.ok then
                 failwith
                   (Printf.sprintf "E16: %s/%s failed its conjunction certificate"
                      regime adm.Dcn_coflow.Admission.variant);
               ( [
                   regime;
                   adm.Dcn_coflow.Admission.variant;
                   Printf.sprintf "%d/%d"
                     (List.length adm.Dcn_coflow.Admission.admitted)
                     jobs;
                   Printf.sprintf "%.0f%%"
                     (100. *. adm.Dcn_coflow.Admission.completion_rate);
                   Printf.sprintf "%.1f" adm.Dcn_coflow.Admission.energy;
                 ],
                 Json.Obj
                   [
                     ("regime", Json.Str regime);
                     ("variant", Json.Str adm.Dcn_coflow.Admission.variant);
                     ( "completion_rate",
                       Json.float adm.Dcn_coflow.Admission.completion_rate );
                     ("energy", Json.float adm.Dcn_coflow.Admission.energy);
                     ( "admitted",
                       Json.Int (List.length adm.Dcn_coflow.Admission.admitted)
                     );
                     ("seconds", Json.float dt);
                   ] ))
             [ Dcn_coflow.Admission.Baseline; Dcn_coflow.Admission.Energy_aware ])
         caps)
  in
  print_endline
    (Dcn_util.Table.render
       ~headers:[ "capacity"; "variant"; "admitted"; "completion"; "energy" ]
       ~rows ());
  report "coflow_admission"
    (Json.Obj [ ("coflows", Json.Int jobs); ("points", Json.List cells) ])

let () =
  (* DCN_SELFCHECK=1: every solver run below certifies its own output. *)
  Dcn_check.Certify.selfcheck_from_env ();
  Printf.printf
    "dcnsched benchmark harness — reproduction of Wang et al., ICDCS 2014\n";
  Printf.printf "mode: %s, %d seed(s) per Figure-2 point, %d job(s)\n"
    (if quick then "quick (fat-tree k=4)" else "paper scale (fat-tree k=8)")
    seeds
    (Dcn_engine.Pool.jobs pool);
  telemetry_overhead ();
  example1 ();
  gadgets ();
  small_exact ();
  bounds_check ();
  theorem4 ();
  packetization ();
  ablations ();
  trace_eval ();
  fig2 2.;
  fig2 4.;
  parallel_scaling ();
  serving ();
  runtime_benchmarks ();
  kernel_scaling ();
  coflow_admission ();
  section "Engine wall-time counters (Dcn_obs.Stage)";
  print_endline (Dcn_obs.Stage.render ());
  Dcn_engine.Pool.shutdown pool;
  flush_observability ();
  Printf.printf "\nDone.\n"
