(** Piecewise-constant rate profiles.

    The transmission rate of a link over time, [x_e(t)] in the paper, is
    a step function: the sum of the rates of the flow slots crossing the
    link.  This module builds the step function from slots and
    integrates power over it. *)

type t
(** Immutable; segments with rate below [1e-12] count as idle. *)

val empty : t

val of_slots : (float * float * float) list -> t
(** [(start, stop, rate)] triples, additive where they overlap.
    Zero-length or zero-rate slots are ignored.  @raise Invalid_argument
    on negative rate or [stop < start]. *)

val segments : t -> (float * float * float) list
(** Maximal constant segments [(start, stop, rate)] with positive rate,
    chronological, non-overlapping. *)

val rate_at : t -> float -> float
(** Rate at time [x] (right-continuous at breakpoints). *)

val max_rate : t -> float

val busy_time : t -> float
(** Total measure of positive-rate time. *)

val volume : t -> float
(** [integral of x(t) dt] — total data carried. *)

val is_idle : t -> bool

val dynamic_energy : Dcn_power.Model.t -> t -> float
(** [integral of mu * x(t)^alpha dt] over busy time — the speed-scaling
    part of Eq. (5) for one link. *)
