lib/sched/schedule.ml: Array Dcn_flow Dcn_power Dcn_topology Float Format Hashtbl List Printf Profile
