lib/sched/quantize.mli: Dcn_power Schedule
