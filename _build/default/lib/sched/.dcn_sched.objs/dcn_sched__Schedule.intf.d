lib/sched/schedule.mli: Dcn_flow Dcn_power Dcn_topology Format Profile
