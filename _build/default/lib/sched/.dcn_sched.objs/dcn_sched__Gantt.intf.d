lib/sched/gantt.mli: Schedule
