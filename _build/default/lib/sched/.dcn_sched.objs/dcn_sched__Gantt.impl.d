lib/sched/gantt.ml: Array Buffer Char Dcn_flow Dcn_topology Float Hashtbl List Option Printf Schedule String
