lib/sched/quantize.ml: Array Dcn_power Float List Profile Schedule
