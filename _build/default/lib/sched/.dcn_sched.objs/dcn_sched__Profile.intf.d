lib/sched/profile.mli: Dcn_power
