lib/sched/profile.ml: Dcn_power Float List
