(** Energy of a schedule under discrete link speeds.

    Given the rate ladder of {!Dcn_power.Discrete}, a link that the
    fluid schedule drives at rate [x] must run at the smallest level
    [>= x].  Two execution models bracket reality:

    - {e rate-hold}: the link holds the level for the whole fluid
      segment (pessimistic — it also ships more data than needed);
    - {e work-preserving}: the link ships exactly the segment's volume
      at the level's speed and goes quiet for the rest of the segment
      (optimistic — ignores transition costs).

    The reported overheads against the continuous-speed energy quantify
    what the paper's idealisation hides. *)

type report = {
  feasible : bool;  (** every fluid rate fits under the top level *)
  fluid_energy : float;  (** the schedule's Eq. (5) energy *)
  hold_energy : float;
  work_energy : float;
  hold_overhead : float;  (** hold / fluid *)
  work_overhead : float;  (** work / fluid *)
}

val report : Dcn_power.Discrete.t -> Schedule.t -> report
(** Infeasible segments (rate above the top level) make
    [feasible = false]; their energy is accounted at the top level so
    the numbers remain comparable. *)
