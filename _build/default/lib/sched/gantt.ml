module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow

let digit_of_flow id = Char.chr (Char.code '0' + (abs id mod 10))

let time_header ~width ~t0 ~t1 =
  Printf.sprintf "%-*s %-8.6g%*s%8.6g\n" 14 "" t0 (width - 16) "" t1

let render ?(width = 64) ?(max_links = 24) (sched : Schedule.t) =
  let t0, t1 = sched.horizon in
  let span = Float.max 1e-12 (t1 -. t0) in
  let col t =
    let c = int_of_float (Float.of_int width *. (t -. t0) /. span) in
    max 0 (min (width - 1) c)
  in
  (* Per link: the flows transmitting in each column. *)
  let rows = Hashtbl.create 32 in
  List.iter
    (fun (p : Schedule.plan) ->
      List.iter
        (fun l ->
          let cells =
            match Hashtbl.find_opt rows l with
            | Some c -> c
            | None ->
              let c = Array.make width None in
              Hashtbl.add rows l c;
              c
          in
          List.iter
            (fun (s : Schedule.slot) ->
              if s.rate > 0. && s.stop > s.start then
                for c = col s.start to col (s.stop -. 1e-12) do
                  cells.(c) <-
                    (match cells.(c) with
                    | None -> Some (digit_of_flow p.flow.Flow.id)
                    | Some _ -> Some '#')
                done)
            p.slots)
        p.path)
    sched.plans;
  let links = List.sort compare (Hashtbl.fold (fun l _ acc -> l :: acc) rows []) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (time_header ~width ~t0 ~t1);
  List.iteri
    (fun i l ->
      if i < max_links then begin
        let label =
          Printf.sprintf "%s->%s"
            (Graph.node_name sched.graph (Graph.link_src sched.graph l))
            (Graph.node_name sched.graph (Graph.link_dst sched.graph l))
        in
        Buffer.add_string buf (Printf.sprintf "%-14s " (String.sub (label ^ String.make 14 ' ') 0 14));
        Array.iter
          (fun cell -> Buffer.add_char buf (Option.value cell ~default:'.'))
          (Hashtbl.find rows l);
        Buffer.add_char buf '\n'
      end
      else if i = max_links then
        Buffer.add_string buf
          (Printf.sprintf "... (%d more links)\n" (List.length links - max_links)))
    links;
  Buffer.contents buf

let render_flows ?(width = 64) ?(max_flows = 24) (sched : Schedule.t) =
  let t0, t1 = sched.horizon in
  let span = Float.max 1e-12 (t1 -. t0) in
  let col t =
    let c = int_of_float (Float.of_int width *. (t -. t0) /. span) in
    max 0 (min (width - 1) c)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (time_header ~width ~t0 ~t1);
  let plans =
    List.sort
      (fun (a : Schedule.plan) b -> compare a.flow.Flow.id b.flow.Flow.id)
      sched.plans
  in
  List.iteri
    (fun i (p : Schedule.plan) ->
      if i < max_flows then begin
        let cells = Array.make width ' ' in
        let f = p.flow in
        for c = col f.Flow.release to col (f.Flow.deadline -. 1e-12) do
          cells.(c) <- '-'
        done;
        List.iter
          (fun (s : Schedule.slot) ->
            if s.rate > 0. && s.stop > s.start then
              for c = col s.start to col (s.stop -. 1e-12) do
                cells.(c) <- '='
              done)
          p.slots;
        Buffer.add_string buf (Printf.sprintf "%-14s " (Printf.sprintf "flow %d" f.Flow.id));
        Array.iter (Buffer.add_char buf) cells;
        Buffer.add_char buf '\n'
      end
      else if i = max_flows then
        Buffer.add_string buf
          (Printf.sprintf "... (%d more flows)\n" (List.length plans - max_flows)))
    plans;
  Buffer.contents buf
