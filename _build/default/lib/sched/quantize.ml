module Model = Dcn_power.Model
module Discrete = Dcn_power.Discrete

type report = {
  feasible : bool;
  fluid_energy : float;
  hold_energy : float;
  work_energy : float;
  hold_overhead : float;
  work_overhead : float;
}

let report (ladder : Discrete.t) (sched : Schedule.t) =
  let fluid_energy = Schedule.energy sched in
  let idle = Schedule.idle_energy sched in
  let feasible = ref true in
  let hold = ref idle and work = ref idle in
  Array.iter
    (fun (_, profile) ->
      List.iter
        (fun (a, b, rate) ->
          let level =
            match Discrete.level_for ladder rate with
            | Some l -> l
            | None ->
              feasible := false;
              ladder.Discrete.levels.(Array.length ladder.Discrete.levels - 1)
          in
          let p = Model.total ladder.Discrete.base level in
          let len = b -. a in
          hold := !hold +. (p *. len);
          (* Work-preserving: ship rate*len volume at the level speed. *)
          work := !work +. (p *. (rate *. len /. level)))
        (Profile.segments profile))
    (Schedule.profiles sched);
  {
    feasible = !feasible;
    fluid_energy;
    hold_energy = !hold;
    work_energy = !work;
    hold_overhead = !hold /. Float.max 1e-12 fluid_energy;
    work_overhead = !work /. Float.max 1e-12 fluid_energy;
  }
