(** ASCII Gantt charts of schedules.

    One row per active link, time on the horizontal axis: each cell
    shows which flow transmits there (last digit of the flow id), [#]
    where several flows share the link, and [.] when idle.  Handy in
    examples and the CLI for eyeballing what an algorithm actually
    scheduled. *)

val render : ?width:int -> ?max_links:int -> Schedule.t -> string
(** [width] columns for the time axis (default 64); [max_links] rows
    before truncating with an ellipsis line (default 24).  Links are
    labelled ["src->dst"] using node names. *)

val render_flows : ?width:int -> ?max_flows:int -> Schedule.t -> string
(** The flow view: one row per flow over its own span — [=] while
    transmitting, [-] while active but silent, spaces outside the
    span. *)
