type t = { segments : (float * float * float) list }

let idle_eps = 1e-12

let empty = { segments = [] }

let of_slots slots =
  List.iter
    (fun (a, b, r) ->
      if r < 0. then invalid_arg "Profile.of_slots: negative rate";
      if b < a then invalid_arg "Profile.of_slots: stop < start")
    slots;
  let events =
    List.concat_map
      (fun (a, b, r) -> if b > a && r > 0. then [ (a, r); (b, -.r) ] else [])
      slots
  in
  let events = List.sort compare events in
  (* Sweep: accumulate rate changes; equal timestamps batch together. *)
  let rec sweep rate start acc = function
    | [] -> List.rev acc
    | (x, _) :: _ as evs ->
      let batch, rest =
        List.partition (fun (y, _) -> Float.abs (y -. x) <= 0.) evs
      in
      let acc =
        if rate > idle_eps && x > start then (start, x, rate) :: acc else acc
      in
      let rate = List.fold_left (fun r (_, d) -> r +. d) rate batch in
      let rate = if Float.abs rate < idle_eps then 0. else rate in
      sweep rate x acc rest
  in
  let raw = sweep 0. neg_infinity [] events in
  (* Coalesce adjacent segments with equal rate (within tolerance). *)
  let rec coalesce = function
    | (a1, b1, r1) :: (a2, b2, r2) :: rest
      when Float.abs (b1 -. a2) <= 1e-12 && Float.abs (r1 -. r2) <= 1e-12 ->
      coalesce ((a1, b2, r1) :: rest)
    | seg :: rest -> seg :: coalesce rest
    | [] -> []
  in
  { segments = coalesce raw }

let segments t = t.segments

let rate_at t x =
  let rec scan = function
    | [] -> 0.
    | (a, b, r) :: rest -> if x >= a && x < b then r else if x < a then 0. else scan rest
  in
  scan t.segments

let max_rate t = List.fold_left (fun acc (_, _, r) -> Float.max acc r) 0. t.segments

let busy_time t = List.fold_left (fun acc (a, b, _) -> acc +. (b -. a)) 0. t.segments

let volume t = List.fold_left (fun acc (a, b, r) -> acc +. ((b -. a) *. r)) 0. t.segments

let is_idle t = t.segments = []

let dynamic_energy model t =
  List.fold_left
    (fun acc (a, b, r) -> acc +. ((b -. a) *. Dcn_power.Model.dynamic model r))
    0. t.segments
