(* Invariant: intervals are sorted by lower endpoint, pairwise disjoint,
   non-touching, and each has strictly positive length. *)
type t = (float * float) list

let empty = []

let is_empty t = t = []

let add t ~lo ~hi =
  if hi < lo then invalid_arg "Interval_set.add: hi < lo";
  if hi = lo then t
  else
    (* Walk the sorted list, merging everything that overlaps [lo, hi]. *)
    let rec insert lo hi = function
      | [] -> [ (lo, hi) ]
      | ((a, b) as iv) :: rest ->
        if b < lo then iv :: insert lo hi rest
        else if hi < a then (lo, hi) :: iv :: rest
        else insert (min lo a) (max hi b) rest
    in
    insert lo hi t

let add_all t ivs = List.fold_left (fun acc (lo, hi) -> add acc ~lo ~hi) t ivs

let intervals t = t

let total t = List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0. t

let mem t x = List.exists (fun (a, b) -> a <= x && x <= b) t

let covered_within t ~lo ~hi =
  if hi <= lo then 0.
  else
    List.fold_left
      (fun acc (a, b) ->
        let a = max a lo and b = min b hi in
        if b > a then acc +. (b -. a) else acc)
      0. t

let available_within t ~lo ~hi =
  if hi <= lo then 0. else hi -. lo -. covered_within t ~lo ~hi

let free_within t ~lo ~hi =
  if hi <= lo then []
  else
    let rec gaps cursor = function
      | [] -> if cursor < hi then [ (cursor, hi) ] else []
      | (a, b) :: rest ->
        if b <= cursor then gaps cursor rest
        else if a >= hi then gaps cursor []
        else
          (* The busy interval overlaps [cursor, hi): emit the gap before
             it (if any) and continue past it. *)
          let tail = gaps (max cursor (min b hi)) rest in
          if a > cursor then (cursor, a) :: tail else tail
    in
    gaps lo t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (a, b) -> Format.fprintf ppf "[%g,%g]" a b))
    t
