(** Tolerant floating-point comparisons.

    Schedules and energies are produced by iterative numeric algorithms,
    so exact equality is meaningless; every feasibility check in the
    project compares through these helpers with an explicit tolerance. *)

val default_eps : float
(** [1e-9]; absolute tolerance used when none is supplied. *)

val equal : ?eps:float -> float -> float -> bool
(** Absolute-difference equality. *)

val close_rel : ?rtol:float -> float -> float -> bool
(** Relative closeness: [|a - b| <= rtol * max(1, |a|, |b|)].
    [rtol] defaults to [1e-6]. *)

val leq : ?eps:float -> float -> float -> bool
(** [a <= b + eps]. *)

val geq : ?eps:float -> float -> float -> bool
(** [a >= b - eps]. *)

val clamp : lo:float -> hi:float -> float -> float
(** Restrict to [\[lo, hi\]].  @raise Invalid_argument if [hi < lo]. *)

val is_finite : float -> bool
