(** Sets of disjoint closed real intervals.

    Most-Critical-First (Algorithm 1 of the paper) repeatedly marks time
    ranges as unavailable on links and asks for the *available time*
    [a ~ b] of a window — the measure of the window minus the busy set.
    This module provides that bookkeeping.  Values are immutable; interval
    endpoints are floats and degenerate (zero-length) intervals are
    ignored. *)

type t

val empty : t

val is_empty : t -> bool

val add : t -> lo:float -> hi:float -> t
(** Union with [\[lo, hi\]], coalescing any overlapping or touching
    intervals.  @raise Invalid_argument if [hi < lo]. *)

val add_all : t -> (float * float) list -> t

val intervals : t -> (float * float) list
(** Disjoint intervals in increasing order. *)

val total : t -> float
(** Total measure of the set. *)

val mem : t -> float -> bool
(** Whether the point lies inside the set (boundaries included). *)

val covered_within : t -> lo:float -> hi:float -> float
(** Measure of the intersection of the set with [\[lo, hi\]]. *)

val available_within : t -> lo:float -> hi:float -> float
(** [hi - lo - covered_within]; the paper's [a ~ b] where the set holds
    the busy time of a link. *)

val free_within : t -> lo:float -> hi:float -> (float * float) list
(** Maximal sub-intervals of [\[lo, hi\]] not covered by the set, in
    increasing order; zero-length gaps are omitted. *)

val pp : Format.formatter -> t -> unit
