(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on empty input. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); [0.] for singletons.
    @raise Invalid_argument on empty input. *)

val minimum : float array -> float
val maximum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics.  @raise Invalid_argument on empty input or [p]
    outside the range. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

val summarize : float array -> summary
(** All of the above in one pass over a copy of the input. *)

val pp_summary : Format.formatter -> summary -> unit
