let default_eps = 1e-9

let equal ?(eps = default_eps) a b = Float.abs (a -. b) <= eps

let close_rel ?(rtol = 1e-6) a b =
  Float.abs (a -. b) <= rtol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let leq ?(eps = default_eps) a b = a <= b +. eps

let geq ?(eps = default_eps) a b = a >= b -. eps

let clamp ~lo ~hi x =
  if hi < lo then invalid_arg "Approx.clamp: hi < lo";
  if x < lo then lo else if x > hi then hi else x

let is_finite x = Float.is_finite x
