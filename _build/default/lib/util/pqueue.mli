(** Mutable binary-heap priority queue.

    Shared by Dijkstra (topology), EDF scheduling (speed scaling) and the
    discrete-event simulator.  Elements with smaller priority (per the
    comparison given at creation) pop first; ties break arbitrarily. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Fresh empty queue ordered by [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty queue. *)

val clear : 'a t -> unit

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the queue; the queue itself is unchanged. *)
