lib/util/table.mli:
