lib/util/approx.mli:
