lib/util/pqueue.mli:
