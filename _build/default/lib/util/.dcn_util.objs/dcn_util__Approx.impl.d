lib/util/approx.ml: Float
