lib/util/prng.mli:
