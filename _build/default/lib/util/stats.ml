let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))

let minimum xs =
  check_nonempty "Stats.minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  check_nonempty "Stats.maximum" xs;
  Array.fold_left max xs.(0) xs

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

let summarize xs =
  check_nonempty "Stats.summarize" xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    p50 = median xs;
    p95 = percentile xs 95.;
    max = maximum xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max
