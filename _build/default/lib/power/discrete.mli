(** Discrete link speeds (rate adaptation).

    Real NICs and switch ports support a handful of operating rates
    (e.g. 1/10/40/100G energy-efficient-Ethernet style), not a
    continuum.  The authors' companion work ("Incorporating rate
    adaptation into green networking", NCA 2013) studies exactly this
    restriction; here it lets the benchmarks measure how much energy the
    continuous-speed idealisation of Eq. (1) hides.  A link carrying
    rate [x] must operate at the smallest available level [>= x] and
    draws [f(level)] while transmitting. *)

type t = private {
  base : Model.t;
  levels : float array;  (** sorted ascending, all positive *)
}

val make : Model.t -> levels:float list -> t
(** @raise Invalid_argument on an empty list, non-positive levels, or
    duplicates. *)

val geometric : Model.t -> count:int -> top:float -> t
(** [count] levels ending at [top], each half the next — the classic
    power-of-two rate ladder.  @raise Invalid_argument if [count < 1]
    or [top <= 0]. *)

val level_for : t -> float -> float option
(** Smallest level at least [x]; [None] if [x] exceeds the top level.
    [Some 0.] never occurs; rate 0 maps to the link being off and is the
    caller's case. *)

val power : t -> float -> float
(** Power drawn while carrying rate [x]: 0 at [x = 0], [f(level_for x)]
    otherwise.  @raise Invalid_argument if [x] exceeds the top level or
    is negative. *)
