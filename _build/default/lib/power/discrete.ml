type t = { base : Model.t; levels : float array }

let make base ~levels =
  if levels = [] then invalid_arg "Discrete.make: no levels";
  List.iter
    (fun l ->
      if not (l > 0.) || not (Dcn_util.Approx.is_finite l) then
        invalid_arg "Discrete.make: levels must be finite and positive")
    levels;
  let sorted = List.sort_uniq compare levels in
  if List.length sorted <> List.length levels then
    invalid_arg "Discrete.make: duplicate levels";
  { base; levels = Array.of_list sorted }

let geometric base ~count ~top =
  if count < 1 then invalid_arg "Discrete.geometric: count must be >= 1";
  if not (top > 0.) then invalid_arg "Discrete.geometric: top must be > 0";
  make base ~levels:(List.init count (fun i -> top /. (2. ** float_of_int (count - 1 - i))))

let level_for t x =
  if x < 0. then invalid_arg "Discrete.level_for: negative rate";
  if x = 0. then None
  else begin
    (* Smallest level >= x by binary search. *)
    let n = Array.length t.levels in
    if x > t.levels.(n - 1) then None
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.levels.(mid) >= x then hi := mid else lo := mid + 1
      done;
      Some t.levels.(!lo)
    end
  end

let power t x =
  if x = 0. then 0.
  else
    match level_for t x with
    | Some level -> Model.total t.base level
    | None ->
      invalid_arg (Printf.sprintf "Discrete.power: rate %g above the top level" x)
