lib/power/discrete.mli: Model
