lib/power/discrete.ml: Array Dcn_util List Model Printf
