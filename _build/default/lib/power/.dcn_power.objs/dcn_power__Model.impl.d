lib/power/model.ml: Dcn_util Float Format
