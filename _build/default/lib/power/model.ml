type t = { sigma : float; mu : float; alpha : float; cap : float }

let make ~sigma ~mu ~alpha ?(cap = infinity) () =
  if sigma < 0. || not (Dcn_util.Approx.is_finite sigma) then
    invalid_arg "Model.make: sigma must be finite and >= 0";
  if not (mu > 0.) || not (Dcn_util.Approx.is_finite mu) then
    invalid_arg "Model.make: mu must be finite and > 0";
  if not (alpha > 1.) || not (Dcn_util.Approx.is_finite alpha) then
    invalid_arg "Model.make: alpha must be finite and > 1";
  if not (cap > 0.) then invalid_arg "Model.make: cap must be > 0";
  { sigma; mu; alpha; cap }

let quadratic = make ~sigma:0. ~mu:1. ~alpha:2. ()
let quartic = make ~sigma:0. ~mu:1. ~alpha:4. ()

let paper_default ~alpha =
  let r = 10. in
  make ~sigma:((alpha -. 1.) *. (r ** alpha)) ~mu:1. ~alpha ()

(* The cap is a scheduling constraint, not a domain limit: energy of an
   overloaded (infeasible) schedule must still be computable, so only
   negative rates are rejected here. *)
let check_rate _m x = if x < 0. then invalid_arg "Model: negative rate"

let dynamic m x =
  check_rate m x;
  m.mu *. (x ** m.alpha)

let total m x = if x = 0. then 0. else m.sigma +. dynamic m x

let dynamic_deriv m x =
  check_rate m x;
  m.alpha *. m.mu *. (x ** (m.alpha -. 1.))

let power_rate m x =
  if x <= 0. then invalid_arg "Model.power_rate: rate must be > 0";
  total m x /. x

let r_opt m = (m.sigma /. (m.mu *. (m.alpha -. 1.))) ** (1. /. m.alpha)

let r_hat m = Float.min (r_opt m) m.cap

let envelope m x =
  check_rate m x;
  if x = 0. then 0.
  else
    let r = r_hat m in
    if r = 0. (* sigma = 0: f itself is convex on (0, cap] *) then dynamic m x
    else if x <= r then x *. power_rate m r
    else total m x

let envelope_deriv m x =
  check_rate m x;
  let r = r_hat m in
  if r = 0. then dynamic_deriv m x
  else if x <= r then power_rate m r
  else dynamic_deriv m x

let energy m ~rate ~duration =
  if duration < 0. then invalid_arg "Model.energy: negative duration";
  total m rate *. duration

let pp ppf m =
  Format.fprintf ppf "f(x) = %g + %g x^%g (cap %g)" m.sigma m.mu m.alpha m.cap
