(** The link power model of the paper (Eq. 1).

    A directed link transmitting at rate [x] draws

    {v
      f(x) = 0                        if x = 0
      f(x) = sigma + mu * x^alpha     if 0 < x <= cap
    v}

    combining power-down ([sigma], idle/chassis share that disappears only
    if the link carries no traffic over the whole horizon) and speed
    scaling ([mu * x^alpha], [alpha > 1]).  All links of a network are
    identical (commodity switches), so one [t] describes the whole
    network. *)

type t = private {
  sigma : float;  (** idle power, >= 0 *)
  mu : float;  (** dynamic-power coefficient, > 0 *)
  alpha : float;  (** superadditivity exponent, > 1 *)
  cap : float;  (** maximum transmission rate [C], > 0 *)
}

val make : sigma:float -> mu:float -> alpha:float -> ?cap:float -> unit -> t
(** [cap] defaults to [infinity] (the paper's numerical section does not
    bind it).  @raise Invalid_argument on out-of-range parameters. *)

val quadratic : t
(** [f(x) = x^2], no idle power, no cap — Example 1 / the [x^2] curve of
    Figure 2. *)

val quartic : t
(** [f(x) = x^4] — the second power function of Figure 2. *)

val paper_default : alpha:float -> t
(** Power function used by the Figure 2 experiments: [mu = 1], the given
    [alpha], and [sigma] chosen so that the optimal operating rate
    {!r_opt} equals the mean flow density scale of the paper's workload
    (sigma = mu (alpha - 1) R^alpha with R = 10, the mean flow volume
    over a unit of time), making the power-down/speed-scaling trade-off
    non-trivial exactly as in Lemma 3 and the Theorem 2 gadget. *)

val total : t -> float -> float
(** [total m x] is [f(x)]: 0 at rate 0, [sigma + mu x^alpha] otherwise.
    Rates above [cap] are evaluated by the same formula (capacity is a
    scheduling constraint enforced elsewhere, so the energy of an
    infeasible schedule is still well-defined).
    @raise Invalid_argument if [x < 0]. *)

val dynamic : t -> float -> float
(** [g(x) = mu * x^alpha] — the speed-scaling part only (used by DCFS
    where the active link set is fixed, Section III-A). *)

val dynamic_deriv : t -> float -> float
(** [g'(x) = alpha * mu * x^(alpha-1)]. *)

val power_rate : t -> float -> float
(** [f(x)/x], energy per unit of traffic (Definition 3).
    @raise Invalid_argument if [x <= 0]. *)

val r_opt : t -> float
(** The rate minimising the power rate, [ (sigma / (mu (alpha-1)))^(1/alpha) ]
    (Lemma 3) — not clamped to [cap]. *)

val r_hat : t -> float
(** [min r_opt cap]: the best rate actually achievable. *)

val envelope : t -> float -> float
(** Lower convex envelope of [f] on [\[0, cap\]]: linear with slope
    [f(r_hat)/r_hat] up to [r_hat], then equal to [f].  Pointwise
    [<= f]; convex; used as the objective of the fractional relaxation
    and the LB series.  When [r_opt <= cap] the envelope is C^1 (the
    slopes match at [r_opt]: both equal [alpha mu r_opt^(alpha-1)]). *)

val envelope_deriv : t -> float -> float
(** Derivative of {!envelope} (right derivative at the kink). *)

val energy : t -> rate:float -> duration:float -> float
(** [f(rate) * duration]. *)

val pp : Format.formatter -> t -> unit
