(** Jobs for single-processor speed scaling (the SS-SP problem of Yao,
    Demers and Shenker, which Algorithm 1 reduces to). *)

type t = private {
  id : int;
  weight : float;  (** work (CPU cycles / data volume), > 0 *)
  release : float;
  deadline : float;  (** > release *)
}

val make : id:int -> weight:float -> release:float -> deadline:float -> t
(** @raise Invalid_argument on non-positive weight or an empty span. *)

val density : t -> float
(** [weight / (deadline - release)]. *)

val pp : Format.formatter -> t -> unit
