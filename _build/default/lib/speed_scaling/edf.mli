(** Preemptive Earliest-Deadline-First placement into free time slots.

    Given tasks (release, deadline, processing duration) and the free
    time of a resource, simulate preemptive EDF and return per-task
    execution slots.  Used by the YDS inner loop and by Algorithm 1 of
    the paper to turn per-flow rates into concrete transmission windows,
    and on its own for Theorem 4's per-interval packet scheduling. *)

type task = {
  task_id : int;
  release : float;
  deadline : float;
  duration : float;  (** processing time needed, >= 0 *)
}

type slot = { task_id : int; start : float; stop : float }
(** A maximal run of one task; [start < stop]. *)

type infeasible = {
  missed_task : int;  (** first task whose deadline passes unfinished *)
  missed_deadline : float;
  remaining : float;  (** work still owed at the deadline *)
}

val place : free:(float * float) list -> task list -> (slot list, infeasible) result
(** Simulate EDF over the free slots (disjoint, increasing).  Tasks run
    only inside free time and inside their own span.  Ties on deadline
    break by task id, so the output is deterministic.  Slots are returned
    in chronological order.  A small tolerance absorbs float drift at
    deadlines. *)

val slots_of_task : slot list -> int -> (float * float) list

val feasible : free:(float * float) list -> task list -> bool
