type task = { task_id : int; release : float; deadline : float; duration : float }

type slot = { task_id : int; start : float; stop : float }

type infeasible = { missed_task : int; missed_deadline : float; remaining : float }

let eps = 1e-9

exception Miss of infeasible

let place ~free tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  Array.iter
    (fun tk ->
      if tk.duration < 0. then invalid_arg "Edf.place: negative duration";
      if tk.deadline < tk.release then invalid_arg "Edf.place: deadline before release")
    tasks;
  let remaining = Array.map (fun tk -> tk.duration) tasks in
  let slots = ref [] in
  let emit task_id start stop =
    if stop -. start > eps then
      match !slots with
      | { task_id = prev; start = s; stop = e } :: rest
        when prev = task_id && Float.abs (e -. start) <= eps ->
        (* Coalesce a continuation of the same task. *)
        slots := { task_id; start = s; stop } :: rest
      | _ -> slots := { task_id; start; stop } :: !slots
  in
  let check_missed now =
    for i = 0 to n - 1 do
      if remaining.(i) > eps && tasks.(i).deadline < now +. eps then
        raise
          (Miss
             {
               missed_task = tasks.(i).task_id;
               missed_deadline = tasks.(i).deadline;
               remaining = remaining.(i);
             })
    done
  in
  (* Earliest-deadline unfinished task released by [now]; ties break on
     task id for determinism. *)
  let pick now =
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if remaining.(i) > eps && tasks.(i).release <= now +. eps then
        if
          !best = -1
          || tasks.(i).deadline < tasks.(!best).deadline
          || (tasks.(i).deadline = tasks.(!best).deadline
              && tasks.(i).task_id < tasks.(!best).task_id)
        then best := i
    done;
    !best
  in
  let next_release after =
    let best = ref infinity in
    for i = 0 to n - 1 do
      if remaining.(i) > eps && tasks.(i).release > after +. eps then
        best := Float.min !best tasks.(i).release
    done;
    !best
  in
  let run_slot (slot_lo, slot_hi) =
    let now = ref slot_lo in
    check_missed !now;
    let continue = ref true in
    while !continue && !now < slot_hi -. eps do
      match pick !now with
      | -1 ->
        let r = next_release !now in
        if r >= slot_hi then continue := false
        else begin
          now := r;
          check_missed !now
        end
      | i ->
        let stop_at =
          Float.min
            (Float.min slot_hi tasks.(i).deadline)
            (Float.min (!now +. remaining.(i)) (next_release !now))
        in
        if stop_at <= !now +. eps then
          (* Only the deadline can pin stop_at to now: the task cannot
             make progress anymore. *)
          raise
            (Miss
               {
                 missed_task = tasks.(i).task_id;
                 missed_deadline = tasks.(i).deadline;
                 remaining = remaining.(i);
               });
        emit tasks.(i).task_id !now stop_at;
        remaining.(i) <- remaining.(i) -. (stop_at -. !now);
        if remaining.(i) < eps then remaining.(i) <- 0.;
        now := stop_at;
        check_missed !now
    done
  in
  match
    List.iter run_slot free;
    (* Anything left over can never run: report the tightest deadline. *)
    let worst = ref (-1) in
    for i = 0 to n - 1 do
      if remaining.(i) > eps && (!worst = -1 || tasks.(i).deadline < tasks.(!worst).deadline)
      then worst := i
    done;
    if !worst >= 0 then
      raise
        (Miss
           {
             missed_task = tasks.(!worst).task_id;
             missed_deadline = tasks.(!worst).deadline;
             remaining = remaining.(!worst);
           })
  with
  | () -> Ok (List.rev !slots)
  | exception Miss info -> Error info

let slots_of_task slots id =
  List.filter_map
    (fun s -> if s.task_id = id then Some (s.start, s.stop) else None)
    slots

let feasible ~free tasks = match place ~free tasks with Ok _ -> true | Error _ -> false
