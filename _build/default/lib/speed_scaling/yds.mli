(** Optimal single-processor speed scaling (Yao–Demers–Shenker).

    Repeatedly find the *critical interval* — the window [\[a, b\]]
    maximising [sum of weights of jobs living inside / available time] —
    run its jobs at that common speed under EDF, mark the window's free
    time as consumed, and continue with the rest.  This is the substrate
    Algorithm 1 of the paper generalises (per link, with virtual
    weights); it is kept standalone here so it can be tested against a
    brute-force convex optimiser and reused directly.

    The implementation keeps original time coordinates and a busy-time
    set instead of collapsing the timeline; group membership uses
    *effective spans* (span minus busy time), which is equivalent to the
    textbook collapse. *)

type group = {
  window : float * float;  (** the critical interval, original time *)
  intensity : float;  (** the common execution speed of the group *)
  job_ids : int list;  (** members, ascending id *)
}

type t = {
  groups : group list;  (** in selection order; intensities non-increasing *)
  speeds : (int * float) list;  (** job id -> speed, every input job once *)
  slots : Edf.slot list;  (** execution plan, chronological, EDF inside groups *)
}

val schedule : Job.t list -> t
(** Jobs must have distinct ids.  With no speed cap every instance is
    feasible.  @raise Invalid_argument on duplicate ids or an empty
    list. *)

val speed_of : t -> int -> float
(** @raise Not_found for an unknown job id. *)

val max_speed : t -> float

val energy : mu:float -> alpha:float -> Job.t list -> t -> float
(** [sum_i w_i * mu * s_i^(alpha-1)] — the SS-SP objective. *)
