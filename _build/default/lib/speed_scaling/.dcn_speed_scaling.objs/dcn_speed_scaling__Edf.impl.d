lib/speed_scaling/edf.ml: Array Float List
