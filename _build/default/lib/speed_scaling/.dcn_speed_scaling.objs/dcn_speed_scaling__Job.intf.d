lib/speed_scaling/job.mli: Format
