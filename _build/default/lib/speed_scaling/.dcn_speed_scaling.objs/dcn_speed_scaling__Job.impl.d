lib/speed_scaling/job.ml: Dcn_util Format
