lib/speed_scaling/yds.mli: Edf Job
