lib/speed_scaling/edf.mli:
