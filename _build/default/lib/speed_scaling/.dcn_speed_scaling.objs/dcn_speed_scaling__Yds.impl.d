lib/speed_scaling/yds.ml: Dcn_util Edf Float Job List Printf
