type t = { id : int; weight : float; release : float; deadline : float }

let make ~id ~weight ~release ~deadline =
  let finite = Dcn_util.Approx.is_finite in
  if not (finite weight && finite release && finite deadline) then
    invalid_arg "Job.make: non-finite field";
  if weight <= 0. then invalid_arg "Job.make: weight must be > 0";
  if deadline <= release then invalid_arg "Job.make: deadline must be > release";
  { id; weight; release; deadline }

let density j = j.weight /. (j.deadline -. j.release)

let pp ppf j =
  Format.fprintf ppf "job#%d w=%g [%g,%g]" j.id j.weight j.release j.deadline
