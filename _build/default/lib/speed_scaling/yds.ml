module Iset = Dcn_util.Interval_set

type group = { window : float * float; intensity : float; job_ids : int list }

type t = { groups : group list; speeds : (int * float) list; slots : Edf.slot list }

let eps = 1e-9

(* A pending job belongs to window [a, b] iff its effective span (span
   minus already-consumed time) lies inside the window: no free time of
   the span remains before [a] or after [b]. *)
let in_window busy (j : Job.t) a b =
  let before = if j.release < a then Iset.available_within busy ~lo:j.release ~hi:a else 0. in
  let after = if j.deadline > b then Iset.available_within busy ~lo:b ~hi:j.deadline else 0. in
  before <= eps && after <= eps

let schedule jobs =
  if jobs = [] then invalid_arg "Yds.schedule: empty job list";
  let ids = List.map (fun (j : Job.t) -> j.id) jobs in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Yds.schedule: duplicate job ids";
  let busy = ref Iset.empty in
  let pending = ref jobs in
  let groups = ref [] in
  let speeds = ref [] in
  let all_slots = ref [] in
  while !pending <> [] do
    let releases = List.sort_uniq compare (List.map (fun (j : Job.t) -> j.release) !pending) in
    let deadlines = List.sort_uniq compare (List.map (fun (j : Job.t) -> j.deadline) !pending) in
    (* Find the window maximising intensity. *)
    let best = ref None in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if b > a then begin
              let members = List.filter (fun j -> in_window !busy j a b) !pending in
              if members <> [] then begin
                let weight = List.fold_left (fun acc (j : Job.t) -> acc +. j.weight) 0. members in
                let avail = Iset.available_within !busy ~lo:a ~hi:b in
                if avail <= eps then
                  invalid_arg "Yds.schedule: window with jobs but no available time";
                let intensity = weight /. avail in
                match !best with
                | Some (bi, _, _, _, _) when bi >= intensity -> ()
                | _ -> best := Some (intensity, a, b, members, avail)
              end
            end)
          deadlines)
      releases;
    match !best with
    | None ->
      (* Every pending job fits no window — impossible since a job's own
         span is always a candidate window containing it. *)
      assert false
    | Some (intensity, a, b, members, _avail) ->
      let member_ids =
        List.sort compare (List.map (fun (j : Job.t) -> j.id) members)
      in
      groups := { window = (a, b); intensity; job_ids = member_ids } :: !groups;
      List.iter (fun (j : Job.t) -> speeds := (j.id, intensity) :: !speeds) members;
      (* Place the group's execution with EDF inside the window's free
         time, then consume the whole window. *)
      let free = Iset.free_within !busy ~lo:a ~hi:b in
      let tasks =
        List.map
          (fun (j : Job.t) ->
            {
              Edf.task_id = j.id;
              release = Float.max j.release a;
              deadline = Float.min j.deadline b;
              duration = j.weight /. intensity;
            })
          members
      in
      (match Edf.place ~free tasks with
      | Ok slots -> all_slots := slots :: !all_slots
      | Error info ->
        invalid_arg
          (Printf.sprintf "Yds.schedule: internal EDF miss for job %d (owing %g)"
             info.missed_task info.remaining));
      busy := Iset.add !busy ~lo:a ~hi:b;
      pending := List.filter (fun (j : Job.t) -> not (List.mem j.id member_ids)) !pending
  done;
  let slots =
    List.sort
      (fun (s1 : Edf.slot) s2 -> compare (s1.start, s1.task_id) (s2.start, s2.task_id))
      (List.concat !all_slots)
  in
  { groups = List.rev !groups; speeds = !speeds; slots }

let speed_of t id = List.assoc id t.speeds

let max_speed t = List.fold_left (fun acc (_, s) -> Float.max acc s) 0. t.speeds

let energy ~mu ~alpha jobs t =
  List.fold_left
    (fun acc (j : Job.t) ->
      let s = speed_of t j.id in
      acc +. (j.weight *. mu *. (s ** (alpha -. 1.))))
    0. jobs
