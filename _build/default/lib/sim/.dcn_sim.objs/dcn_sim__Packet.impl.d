lib/sim/packet.ml: Array Dcn_flow Dcn_sched Dcn_topology Dcn_util Float Format List
