lib/sim/fluid.mli: Dcn_sched Dcn_topology Format
