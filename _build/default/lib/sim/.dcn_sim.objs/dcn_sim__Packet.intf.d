lib/sim/packet.mli: Dcn_sched Format
