lib/sim/fluid.ml: Array Dcn_flow Dcn_power Dcn_sched Dcn_topology Float Format Fun List
