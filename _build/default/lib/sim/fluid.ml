module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule

type flow_stat = {
  flow_id : int;
  delivered : float;
  completion : float option;
  met_deadline : bool;
}

type link_stat = {
  link : Graph.link;
  busy_time : float;
  volume : float;
  peak_rate : float;
  dynamic_energy : float;
}

type report = {
  energy : float;
  idle_energy : float;
  dynamic_energy : float;
  flow_stats : flow_stat list;
  link_stats : link_stat list;
  all_deadlines_met : bool;
  max_rate : float;
  capacity_respected : bool;
  events : int;
}

let run (sched : Schedule.t) =
  let power = sched.power in
  let plans = Array.of_list sched.plans in
  let n = Array.length plans in
  let m = Graph.num_links sched.graph in
  (* Event times: every slot boundary. *)
  let times =
    Array.to_list plans
    |> List.concat_map (fun (p : Schedule.plan) ->
           List.concat_map (fun (s : Schedule.slot) -> [ s.start; s.stop ]) p.slots)
    |> List.sort_uniq compare
    |> Array.of_list
  in
  let delivered = Array.make n 0. in
  let completion = Array.make n None in
  let busy_time = Array.make m 0. in
  let volume = Array.make m 0. in
  let peak = Array.make m 0. in
  let dyn = Array.make m 0. in
  let rates = Array.make m 0. in
  let events = max 0 (Array.length times - 1) in
  for k = 0 to events - 1 do
    let t0 = times.(k) and t1 = times.(k + 1) in
    let len = t1 -. t0 in
    if len > 0. then begin
      Array.fill rates 0 m 0.;
      Array.iteri
        (fun i (p : Schedule.plan) ->
          List.iter
            (fun (s : Schedule.slot) ->
              (* Slots are closed-open against the segment midpoint. *)
              if s.start <= t0 +. 1e-12 && s.stop >= t1 -. 1e-12 && s.rate > 0. then begin
                delivered.(i) <- delivered.(i) +. (s.rate *. len);
                List.iter (fun l -> rates.(l) <- rates.(l) +. s.rate) p.path
              end)
            p.slots)
        plans;
      Array.iteri
        (fun i (p : Schedule.plan) ->
          if
            completion.(i) = None
            && delivered.(i) >= p.flow.Flow.volume -. (1e-9 *. Float.max 1. p.flow.Flow.volume)
          then completion.(i) <- Some t1)
        plans;
      for l = 0 to m - 1 do
        if rates.(l) > 0. then begin
          busy_time.(l) <- busy_time.(l) +. len;
          volume.(l) <- volume.(l) +. (rates.(l) *. len);
          peak.(l) <- Float.max peak.(l) rates.(l);
          dyn.(l) <- dyn.(l) +. (Model.dynamic power rates.(l) *. len)
        end
      done
    end
  done;
  let flow_stats =
    Array.to_list
      (Array.mapi
         (fun i (p : Schedule.plan) ->
           let f = p.flow in
           let ok =
             match completion.(i) with
             | Some t -> t <= f.Flow.deadline +. 1e-6
             | None -> false
           in
           {
             flow_id = f.Flow.id;
             delivered = delivered.(i);
             completion = completion.(i);
             met_deadline = ok;
           })
         plans)
    |> List.sort (fun a b -> compare a.flow_id b.flow_id)
  in
  let link_stats =
    List.init m Fun.id
    |> List.filter_map (fun l ->
           if busy_time.(l) > 0. then
             Some
               {
                 link = l;
                 busy_time = busy_time.(l);
                 volume = volume.(l);
                 peak_rate = peak.(l);
                 dynamic_energy = dyn.(l);
               }
           else None)
  in
  let t0, t1 = sched.horizon in
  let idle_energy =
    float_of_int (List.length link_stats) *. power.Model.sigma *. (t1 -. t0)
  in
  let dynamic_energy = Array.fold_left ( +. ) 0. dyn in
  let max_rate = Array.fold_left Float.max 0. peak in
  {
    energy = idle_energy +. dynamic_energy;
    idle_energy;
    dynamic_energy;
    flow_stats;
    link_stats;
    all_deadlines_met = List.for_all (fun fs -> fs.met_deadline) flow_stats;
    max_rate;
    capacity_respected = max_rate <= power.Model.cap *. (1. +. 1e-6);
    events;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "energy=%.4f (idle %.4f + dynamic %.4f), %d active links, max rate %.4f, deadlines %s, %d events"
    r.energy r.idle_energy r.dynamic_energy (List.length r.link_stats) r.max_rate
    (if r.all_deadlines_met then "met" else "MISSED")
    r.events
