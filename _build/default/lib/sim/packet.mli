(** Packet-level execution of a schedule.

    Section III of the paper argues that the virtual-circuit schedules
    of Most-Critical-First survive in a packet-switching network: give
    all packets of flow [j_i] a priority equal to the flow's start time
    [r'_i] and let links serve queued packets by priority.  This module
    implements that store-and-forward network: flows chop their data
    into packets, inject them at the source according to their fluid
    schedule, and every link serves one packet at a time — highest
    priority first, at the transmitting flow's scheduled rate.

    Compared to the fluid model, packetisation adds a pipeline delay of
    roughly [(|P_i| - 1) * packet_size / s_i] per flow plus queueing
    noise; [run] reports each flow's lateness against its deadline so
    tests can assert the slack stays within that envelope. *)

type config = {
  packet_size : float;  (** data units per packet; > 0 (default 1.0) *)
}

val default_config : config

type flow_report = {
  flow_id : int;
  packets : int;  (** number of packets injected *)
  delivered : int;  (** packets that reached the destination *)
  last_arrival : float;  (** arrival of the final packet; [nan] if none *)
  lateness : float;  (** [last_arrival - deadline]; <= 0 means on time *)
  pipeline_bound : float;
      (** the expected packetisation slack
          [(|P_i| - 1) * packet_size / rate + packet_size / rate] *)
}

type report = {
  flow_reports : flow_report list;  (** ascending flow id *)
  all_delivered : bool;
  max_lateness : float;
  within_pipeline_slack : bool;
      (** every flow's lateness is below its pipeline bound (plus
          queueing tolerance) — the empirical Theorem-4-style check at
          packet granularity *)
  events : int;
  max_queue : int;  (** worst per-link queue length observed *)
}

val run : ?config:config -> Dcn_sched.Schedule.t -> report
(** Flows with multiple rates use the rate of each slot; priorities are
    the first slot start of each flow (the paper's [r'_i]), ties broken
    by flow id. *)

val pp_report : Format.formatter -> report -> unit
