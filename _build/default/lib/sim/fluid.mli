(** Fluid-level discrete-event execution of a schedule.

    The paper validates its algorithms in a flow-level simulator; this
    is ours.  [run] replays a {!Dcn_sched.Schedule.t} through time —
    events at every slot boundary, constant rates in between — and
    measures delivered volumes, per-link loads and energy by direct
    integration, independently of the analytic accounting in
    [Schedule].  Tests assert the two agree and that every deadline is
    met (Theorem 4 for Random-Schedule output). *)

type flow_stat = {
  flow_id : int;
  delivered : float;
  completion : float option;  (** first instant the full volume is through *)
  met_deadline : bool;
}

type link_stat = {
  link : Dcn_topology.Graph.link;
  busy_time : float;
  volume : float;
  peak_rate : float;
  dynamic_energy : float;
}

type report = {
  energy : float;  (** Eq. (5): idle + dynamic *)
  idle_energy : float;
  dynamic_energy : float;
  flow_stats : flow_stat list;  (** ascending flow id *)
  link_stats : link_stat list;  (** ascending link id; active links only *)
  all_deadlines_met : bool;
  max_rate : float;
  capacity_respected : bool;
  events : int;  (** number of time segments simulated *)
}

val run : Dcn_sched.Schedule.t -> report

val pp_report : Format.formatter -> report -> unit
