module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Schedule = Dcn_sched.Schedule
module Pqueue = Dcn_util.Pqueue

type config = { packet_size : float }

let default_config = { packet_size = 1.0 }

type flow_report = {
  flow_id : int;
  packets : int;
  delivered : int;
  last_arrival : float;
  lateness : float;
  pipeline_bound : float;
}

type report = {
  flow_reports : flow_report list;
  all_delivered : bool;
  max_lateness : float;
  within_pipeline_slack : bool;
  events : int;
  max_queue : int;
}

type packet = {
  flow_idx : int;
  priority : float;  (* the flow's r'_i; smaller = more urgent *)
  seq : int;
  size : float;
  rate : float;  (* service rate on every link, from the fluid slot *)
}

(* Injection times: packet k leaves the source when the fluid schedule
   has pushed (k+1) packets' worth of data. *)
let injections ~packet_size (plan : Schedule.plan) =
  let total = plan.flow.Flow.volume in
  let count = int_of_float (Float.ceil ((total /. packet_size) -. 1e-9)) in
  let count = max count 1 in
  let out = ref [] in
  let target k =
    Float.min total (float_of_int (k + 1) *. packet_size)
  in
  let k = ref 0 in
  let cumulative = ref 0. in
  List.iter
    (fun (s : Schedule.slot) ->
      let slot_amount = (s.stop -. s.start) *. s.rate in
      while
        !k < count
        && target !k <= !cumulative +. slot_amount +. 1e-9
        && s.rate > 0.
      do
        let within = (target !k -. !cumulative) /. s.rate in
        let t = s.start +. Float.max 0. within in
        let size =
          if !k = count - 1 then total -. (float_of_int (count - 1) *. packet_size)
          else packet_size
        in
        out := (t, size, s.rate) :: !out;
        incr k
      done;
      cumulative := !cumulative +. slot_amount)
    plan.slots;
  (* A schedule that under-delivers (incomplete placement) injects fewer
     packets than ceil(w / size); report what was actually injected. *)
  List.rev !out

type event =
  | Arrival of packet * Graph.link list
  | Service_done of Graph.link * packet * Graph.link list

let run ?(config = default_config) (sched : Schedule.t) =
  if not (config.packet_size > 0.) then invalid_arg "Packet.run: packet_size must be > 0";
  let plans = Array.of_list sched.plans in
  let nf = Array.length plans in
  let m = Graph.num_links sched.graph in
  let priority_of i =
    match plans.(i).Schedule.slots with
    | [] -> infinity
    | s :: _ -> s.Schedule.start
  in
  (* Per-link queues ordered by (priority, flow id, seq). *)
  let queues =
    Array.init m (fun _ ->
        Pqueue.create ~cmp:(fun (p1 : packet * Graph.link list) (p2 : packet * Graph.link list) ->
            let a = fst p1 and b = fst p2 in
            compare (a.priority, a.flow_idx, a.seq) (b.priority, b.flow_idx, b.seq)))
  in
  let link_busy = Array.make m false in
  let max_queue = ref 0 in
  let events =
    Pqueue.create ~cmp:(fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
  in
  let counter = ref 0 in
  let push t ev =
    incr counter;
    Pqueue.add events (t, !counter, ev)
  in
  let delivered = Array.make nf 0 in
  let last_arrival = Array.make nf nan in
  let expected = Array.make nf 0 in
  (* Inject all packets. *)
  Array.iteri
    (fun i (plan : Schedule.plan) ->
      let packet_list = injections ~packet_size:config.packet_size plan in
      expected.(i) <- List.length packet_list;
      List.iteri
        (fun seq (t, size, rate) ->
          push t (Arrival ({ flow_idx = i; priority = priority_of i; seq; size; rate }, plan.path)))
        packet_list)
    plans;
  let start_service link packet rest now =
    link_busy.(link) <- true;
    push (now +. (packet.size /. packet.rate)) (Service_done (link, packet, rest))
  in
  let event_count = ref 0 in
  let rec loop () =
    match Pqueue.pop events with
    | None -> ()
    | Some (now, _, ev) ->
      incr event_count;
      (match ev with
      | Arrival (packet, []) ->
        delivered.(packet.flow_idx) <- delivered.(packet.flow_idx) + 1;
        last_arrival.(packet.flow_idx) <- now
      | Arrival (packet, link :: rest) ->
        if link_busy.(link) then begin
          Pqueue.add queues.(link) (packet, rest);
          max_queue := max !max_queue (Pqueue.length queues.(link))
        end
        else start_service link packet rest now
      | Service_done (link, packet, rest) ->
        push now (Arrival (packet, rest));
        (match Pqueue.pop queues.(link) with
        | Some (next, next_rest) -> start_service link next next_rest now
        | None -> link_busy.(link) <- false));
      loop ()
  in
  loop ();
  let flow_reports =
    Array.to_list
      (Array.mapi
         (fun i (plan : Schedule.plan) ->
           let f = plan.flow in
           let rate_min =
             List.fold_left
               (fun acc (s : Schedule.slot) -> if s.rate > 0. then Float.min acc s.rate else acc)
               infinity plan.slots
           in
           let hops = List.length plan.path in
           let pipeline_bound =
             if rate_min = infinity then 0.
             else float_of_int hops *. config.packet_size /. rate_min
           in
           let lateness =
             if Float.is_nan last_arrival.(i) then infinity
             else last_arrival.(i) -. f.Flow.deadline
           in
           {
             flow_id = f.Flow.id;
             packets = expected.(i);
             delivered = delivered.(i);
             last_arrival = last_arrival.(i);
             lateness;
             pipeline_bound;
           })
         plans)
    |> List.sort (fun a b -> compare a.flow_id b.flow_id)
  in
  let all_delivered = List.for_all (fun r -> r.delivered = r.packets) flow_reports in
  let max_lateness =
    List.fold_left (fun acc r -> Float.max acc r.lateness) neg_infinity flow_reports
  in
  let within_pipeline_slack =
    all_delivered
    && List.for_all (fun r -> r.lateness <= r.pipeline_bound +. 1e-9) flow_reports
  in
  {
    flow_reports;
    all_delivered;
    max_lateness;
    within_pipeline_slack;
    events = !event_count;
    max_queue = !max_queue;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "packets %s, max lateness %.4f, pipeline slack %s, %d events, max queue %d"
    (if r.all_delivered then "all delivered" else "LOST")
    r.max_lateness
    (if r.within_pipeline_slack then "respected" else "EXCEEDED")
    r.events r.max_queue
