(** Flow splitting (Section II-B of the paper).

    "Multi-path routing protocols can be incorporated in our model by
    splitting a big flow into many small flows with the same release
    time and deadline at the source end and each of the small flows
    will follow a single path."  These helpers produce that
    transformation so the single-path algorithms can approximate
    multi-path behaviour; as the number of parts grows, Random-Schedule
    approaches its own fractional relaxation. *)

val flow : Flow.t -> parts:int -> first_id:int -> Flow.t list
(** [parts >= 1] equal sub-flows with ids [first_id .. first_id+parts-1],
    volumes summing exactly to the original (the last part absorbs the
    rounding).  @raise Invalid_argument if [parts < 1]. *)

val workload : Flow.t list -> parts:int -> Flow.t list
(** Split every flow; fresh dense ids starting at 0 (original identity
    is recoverable as [new_id / parts] when the input ids were dense —
    use {!mapping} otherwise). *)

val mapping : Flow.t list -> parts:int -> (int * int) list
(** [(new id, original id)] pairs for {!workload} on the same input. *)
