type t = {
  id : int;
  src : Dcn_topology.Graph.node;
  dst : Dcn_topology.Graph.node;
  volume : float;
  release : float;
  deadline : float;
}

let make ~id ~src ~dst ~volume ~release ~deadline =
  let finite = Dcn_util.Approx.is_finite in
  if not (finite volume && finite release && finite deadline) then
    invalid_arg "Flow.make: non-finite field";
  if volume <= 0. then invalid_arg "Flow.make: volume must be > 0";
  if deadline <= release then invalid_arg "Flow.make: deadline must be > release";
  if src = dst then invalid_arg "Flow.make: src = dst";
  { id; src; dst; volume; release; deadline }

let density f = f.volume /. (f.deadline -. f.release)

let span f = (f.release, f.deadline)

let span_length f = f.deadline -. f.release

let active_at f t = f.release <= t && t <= f.deadline

let spans_interval f ~lo ~hi =
  Dcn_util.Approx.leq f.release lo && Dcn_util.Approx.geq f.deadline hi

let horizon = function
  | [] -> invalid_arg "Flow.horizon: empty flow list"
  | f :: rest ->
    List.fold_left
      (fun (lo, hi) g -> (Float.min lo g.release, Float.max hi g.deadline))
      (f.release, f.deadline) rest

let total_volume flows = List.fold_left (fun acc f -> acc +. f.volume) 0. flows

let max_density = function
  | [] -> invalid_arg "Flow.max_density: empty flow list"
  | flows -> List.fold_left (fun acc f -> Float.max acc (density f)) 0. flows

let pp ppf f =
  Format.fprintf ppf "flow#%d %d->%d w=%g span=[%g,%g]" f.id f.src f.dst f.volume
    f.release f.deadline
