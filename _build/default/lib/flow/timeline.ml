type t = { points : float array }

let make flows =
  if flows = [] then invalid_arg "Timeline.make: empty flow list";
  let raw =
    List.concat_map (fun f -> [ f.Flow.release; f.Flow.deadline ]) flows
  in
  let sorted = List.sort_uniq compare raw in
  { points = Array.of_list sorted }

let breakpoints t = t.points

let num_intervals t = Array.length t.points - 1

let bounds t k =
  if k < 0 || k >= num_intervals t then invalid_arg "Timeline.bounds: out of range";
  (t.points.(k), t.points.(k + 1))

let length t k =
  let lo, hi = bounds t k in
  hi -. lo

let horizon t = (t.points.(0), t.points.(Array.length t.points - 1))

let beta t k =
  let t0, t1 = horizon t in
  length t k /. (t1 -. t0)

let lambda t =
  let t0, t1 = horizon t in
  let shortest = ref infinity in
  for k = 0 to num_intervals t - 1 do
    shortest := Float.min !shortest (length t k)
  done;
  (t1 -. t0) /. !shortest

let active t flows k =
  let lo, hi = bounds t k in
  List.filter (fun f -> Flow.spans_interval f ~lo ~hi) flows

let interval_indices_of t f =
  let acc = ref [] in
  for k = num_intervals t - 1 downto 0 do
    let lo, hi = bounds t k in
    if Flow.spans_interval f ~lo ~hi then acc := k :: !acc
  done;
  !acc

let index_at t x =
  let t0, t1 = horizon t in
  if x < t0 || x > t1 then None
  else begin
    (* Binary search for the interval whose [lo, hi] contains x; boundary
       points resolve to the earlier interval. *)
    let lo = ref 0 and hi = ref (num_intervals t - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x <= t.points.(mid + 1) then hi := mid else lo := mid + 1
    done;
    Some !lo
  end
