lib/flow/timeline.ml: Array Float Flow List
