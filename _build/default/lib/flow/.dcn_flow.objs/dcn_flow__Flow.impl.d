lib/flow/flow.ml: Dcn_topology Dcn_util Float Format List
