lib/flow/timeline.mli: Flow
