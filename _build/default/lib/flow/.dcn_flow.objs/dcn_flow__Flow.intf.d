lib/flow/flow.mli: Dcn_topology Format
