lib/flow/workload.mli: Dcn_topology Dcn_util Flow
