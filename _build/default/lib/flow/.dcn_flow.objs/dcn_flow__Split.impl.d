lib/flow/split.ml: Flow List
