lib/flow/split.mli: Flow
