lib/flow/workload.ml: Array Dcn_topology Dcn_util Float Flow List Printf
