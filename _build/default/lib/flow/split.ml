let flow (f : Flow.t) ~parts ~first_id =
  if parts < 1 then invalid_arg "Split.flow: parts must be >= 1";
  let share = f.Flow.volume /. float_of_int parts in
  List.init parts (fun j ->
      let volume =
        if j = parts - 1 then f.Flow.volume -. (share *. float_of_int (parts - 1))
        else share
      in
      Flow.make ~id:(first_id + j) ~src:f.Flow.src ~dst:f.Flow.dst ~volume
        ~release:f.Flow.release ~deadline:f.Flow.deadline)

let workload flows ~parts =
  List.concat (List.mapi (fun i f -> flow f ~parts ~first_id:(i * parts)) flows)

let mapping flows ~parts =
  List.concat
    (List.mapi
       (fun i (f : Flow.t) -> List.init parts (fun j -> ((i * parts) + j, f.Flow.id)))
       flows)
