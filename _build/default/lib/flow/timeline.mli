(** The interval structure of Algorithm 2.

    [T = {t_0 < t_1 < ... < t_K}] collects the distinct release times and
    deadlines of all flows; [I_k = \[t_(k-1), t_k\]] are the elementary
    intervals.  Within one interval the set of active flows does not
    change, which is what lets the relaxation decompose. *)

type t

val make : Flow.t list -> t
(** @raise Invalid_argument on an empty flow list. *)

val breakpoints : t -> float array
(** Sorted, distinct. *)

val num_intervals : t -> int
(** [K]. *)

val bounds : t -> int -> float * float
(** [bounds tl k] is [I_(k+1)] for 0-based [k].  @raise Invalid_argument
    if out of range. *)

val length : t -> int -> float
(** [|I_k|]. *)

val horizon : t -> float * float
(** [(t_0, t_K)]. *)

val beta : t -> int -> float
(** [|I_k| / (t_K - t_0)]. *)

val lambda : t -> float
(** [(t_K - t_0) / min_k |I_k|] — the interval-skew factor in the
    approximation ratio (Theorem 6). *)

val active : t -> Flow.t list -> int -> Flow.t list
(** Flows whose span contains interval [k], in input order. *)

val interval_indices_of : t -> Flow.t -> int list
(** Indices of the intervals covered by the flow's span, ascending.  The
    union of those intervals is exactly the span (spans start and end on
    breakpoints by construction). *)

val index_at : t -> float -> int option
(** Interval containing time [x] ([None] outside the horizon; boundary
    points resolve to the earlier interval except [t_0]). *)
