(** Deadline-constrained flows (Section II-B).

    A flow moves [volume] units of data from [src] to [dst] within its
    span [\[release, deadline\]]; preemption is allowed and a single path
    must carry all of it. *)

type t = private {
  id : int;  (** unique within an instance; indexes solution arrays *)
  src : Dcn_topology.Graph.node;
  dst : Dcn_topology.Graph.node;
  volume : float;  (** [w_i], > 0 *)
  release : float;  (** [r_i] *)
  deadline : float;  (** [d_i], > release *)
}

val make :
  id:int ->
  src:Dcn_topology.Graph.node ->
  dst:Dcn_topology.Graph.node ->
  volume:float ->
  release:float ->
  deadline:float ->
  t
(** @raise Invalid_argument if [volume <= 0], [deadline <= release],
    [src = dst], or any field is not finite. *)

val density : t -> float
(** [D_i = volume / (deadline - release)]. *)

val span : t -> float * float

val span_length : t -> float

val active_at : t -> float -> bool
(** Whether [release <= t <= deadline]. *)

val spans_interval : t -> lo:float -> hi:float -> bool
(** Whether [\[lo, hi\]] lies inside the flow's span (with a small
    tolerance for breakpoint arithmetic). *)

val horizon : t list -> float * float
(** [(min release, max deadline)] over the flows.
    @raise Invalid_argument on an empty list. *)

val total_volume : t list -> float

val max_density : t list -> float
(** [D = max_i D_i], the quantity in the approximation ratio.
    @raise Invalid_argument on an empty list. *)

val pp : Format.formatter -> t -> unit
