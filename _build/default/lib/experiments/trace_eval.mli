(** Experiment E10 (extension): production-like traces.

    The paper's evaluation uses uniform spans and normal volumes; real
    DCN traffic has Poisson arrivals and heavy-tailed sizes.  This
    experiment replays {!Dcn_flow.Workload.trace} workloads at
    increasing load through all four policies (SP+MCF, ECMP+MCF,
    online Greedy-EAR, Random-Schedule), normalised by the fractional
    LB, and confirms the deadline guarantee on every run. *)

type row = {
  load : float;
  n_flows : int;
  sp : float;
  ecmp : float;
  ear : float;
  rs : float;
  deadlines_met : bool;
}

val run :
  ?alpha:float -> ?seed:int -> ?horizon:float -> loads:float list -> unit -> row list
(** Leaf-spine fabric (4 spines, 6 leaves, 4 hosts each); [horizon]
    defaults to 60 time units. *)

val render : row list -> string
