(** Experiment: the worst-case analysis vs practice.

    For random instances, compare the measured approximation ratio of
    Random-Schedule (against the fractional LB, an over-estimate of the
    true ratio) with the Theorem 6 growth term and the Theorem 3
    universal floor.  The point the table makes: the measured ratio sits
    barely above the floor while the worst-case term is astronomically
    loose — the algorithm is far better in practice than its guarantee. *)

type row = {
  n : int;
  lambda : float;
  measured : float;  (** RS energy / fractional LB *)
  theorem3_floor : float;
  theorem6_term : float;
}

val run : ?alpha:float -> ?seed:int -> ns:int list -> unit -> row list

val render : row list -> string
