lib/experiments/small_exact.mli:
