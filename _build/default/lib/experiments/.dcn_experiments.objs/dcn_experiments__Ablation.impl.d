lib/experiments/ablation.ml: Array Dcn_core Dcn_flow Dcn_power Dcn_sched Dcn_topology Dcn_util Fig2 Fun List
