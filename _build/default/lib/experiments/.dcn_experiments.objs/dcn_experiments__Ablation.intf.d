lib/experiments/ablation.mli:
