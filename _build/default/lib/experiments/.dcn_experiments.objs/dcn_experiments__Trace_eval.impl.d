lib/experiments/trace_eval.ml: Dcn_core Dcn_flow Dcn_power Dcn_sim Dcn_topology Dcn_util Fig2 List
