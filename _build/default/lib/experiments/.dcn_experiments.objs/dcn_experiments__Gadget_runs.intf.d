lib/experiments/gadget_runs.mli:
