lib/experiments/small_exact.ml: Dcn_core Dcn_flow Dcn_power Dcn_topology Dcn_util Fig2 List
