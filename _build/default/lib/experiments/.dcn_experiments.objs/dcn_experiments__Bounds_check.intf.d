lib/experiments/bounds_check.mli:
