lib/experiments/trace_eval.mli:
