lib/experiments/fig2.ml: Array Buffer Dcn_core Dcn_flow Dcn_mcf Dcn_power Dcn_sim Dcn_topology Dcn_util List Printf
