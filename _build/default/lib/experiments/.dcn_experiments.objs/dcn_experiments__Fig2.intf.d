lib/experiments/fig2.mli: Dcn_mcf
