lib/experiments/gadget_runs.ml: Dcn_core Dcn_util Fig2
