lib/experiments/bounds_check.ml: Dcn_core Dcn_flow Dcn_power Dcn_topology Dcn_util Fig2 List Printf
