module B = Graph.Builder

let line n =
  if n < 2 then invalid_arg "Builders.line: need at least 2 nodes";
  let b = B.create () in
  let nodes = Array.init n (fun i -> B.add_node b ~name:(Printf.sprintf "n%d" i) Graph.Host) in
  for i = 0 to n - 2 do
    ignore (B.add_cable b nodes.(i) nodes.(i + 1))
  done;
  B.finish b

let parallel ~links =
  if links < 1 then invalid_arg "Builders.parallel: need at least 1 link";
  let b = B.create () in
  let src = B.add_node b ~name:"src" Graph.Host in
  let dst = B.add_node b ~name:"dst" Graph.Host in
  for _ = 1 to links do
    ignore (B.add_cable b src dst)
  done;
  B.finish b

let star ~leaves =
  if leaves < 2 then invalid_arg "Builders.star: need at least 2 leaves";
  let b = B.create () in
  let hosts = Array.init leaves (fun _ -> B.add_node b Graph.Host) in
  let hub = B.add_node b (Graph.Switch { tier = 0 }) in
  Array.iter (fun h -> ignore (B.add_cable b h hub)) hosts;
  B.finish b

let leaf_spine ~spines ~leaves ~hosts_per_leaf =
  if spines < 1 || leaves < 1 || hosts_per_leaf < 1 then
    invalid_arg "Builders.leaf_spine: all counts must be positive";
  let b = B.create () in
  let host_ids =
    Array.init (leaves * hosts_per_leaf) (fun _ -> B.add_node b Graph.Host)
  in
  let leaf_ids =
    Array.init leaves (fun i ->
        B.add_node b ~name:(Printf.sprintf "leaf%d" i) (Graph.Switch { tier = 0 }))
  in
  let spine_ids =
    Array.init spines (fun i ->
        B.add_node b ~name:(Printf.sprintf "spine%d" i) (Graph.Switch { tier = 1 }))
  in
  Array.iteri
    (fun i h -> ignore (B.add_cable b h leaf_ids.(i / hosts_per_leaf)))
    host_ids;
  Array.iter
    (fun leaf -> Array.iter (fun spine -> ignore (B.add_cable b leaf spine)) spine_ids)
    leaf_ids;
  B.finish b

let fat_tree k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Builders.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let b = B.create () in
  (* Hosts first so that host ids are 0 .. k^3/4 - 1. *)
  let hosts =
    Array.init (k * half * half) (fun i -> B.add_node b ~name:(Printf.sprintf "h%d" i) Graph.Host)
  in
  let edge =
    Array.init k (fun pod ->
        Array.init half (fun i ->
            B.add_node b
              ~name:(Printf.sprintf "edge%d_%d" pod i)
              (Graph.Switch { tier = 0 })))
  in
  let agg =
    Array.init k (fun pod ->
        Array.init half (fun i ->
            B.add_node b
              ~name:(Printf.sprintf "agg%d_%d" pod i)
              (Graph.Switch { tier = 1 })))
  in
  let core =
    Array.init (half * half) (fun i ->
        B.add_node b ~name:(Printf.sprintf "core%d" i) (Graph.Switch { tier = 2 }))
  in
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      (* Hosts of edge switch e in this pod. *)
      for h = 0 to half - 1 do
        let host = hosts.((pod * half * half) + (e * half) + h) in
        ignore (B.add_cable b host edge.(pod).(e))
      done;
      (* Full bipartite edge-agg inside the pod. *)
      for a = 0 to half - 1 do
        ignore (B.add_cable b edge.(pod).(e) agg.(pod).(a))
      done
    done;
    (* Aggregation switch a serves core group a. *)
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        ignore (B.add_cable b agg.(pod).(a) core.((a * half) + c))
      done
    done
  done;
  B.finish b

let bcube ~n ~level =
  if n < 2 then invalid_arg "Builders.bcube: n must be >= 2";
  if level < 0 then invalid_arg "Builders.bcube: level must be >= 0";
  let pow base e =
    let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
    go 1 e
  in
  let num_hosts = pow n (level + 1) in
  let switches_per_level = pow n level in
  let b = B.create () in
  let hosts = Array.init num_hosts (fun i -> B.add_node b ~name:(Printf.sprintf "h%d" i) Graph.Host) in
  (* Level-j switch with index s (base-n digits of the host address with
     digit j removed) connects hosts whose address matches s outside
     digit j. *)
  for j = 0 to level do
    for s = 0 to switches_per_level - 1 do
      let sw = B.add_node b ~name:(Printf.sprintf "sw%d_%d" j s) (Graph.Switch { tier = j }) in
      let low = s mod pow n j in
      let high = s / pow n j in
      for d = 0 to n - 1 do
        let host_addr = (high * pow n (j + 1)) + (d * pow n j) + low in
        ignore (B.add_cable b hosts.(host_addr) sw)
      done
    done
  done;
  B.finish b

let dcell ~n ~level =
  if n < 2 then invalid_arg "Builders.dcell: n must be >= 2";
  if level < 0 then invalid_arg "Builders.dcell: level must be >= 0";
  (* t.(k) = hosts in a DCell_k; g.(k) = number of DCell_(k-1) sub-cells. *)
  let t = Array.make (level + 1) n in
  for k = 1 to level do
    t.(k) <- (t.(k - 1) + 1) * t.(k - 1);
    if t.(k) > 10_000 then invalid_arg "Builders.dcell: more than 10_000 hosts"
  done;
  let b = B.create () in
  let hosts =
    Array.init t.(level) (fun i -> B.add_node b ~name:(Printf.sprintf "h%d" i) Graph.Host)
  in
  let switch_count = ref 0 in
  (* Wire the DCell_k spanning hosts [offset, offset + t.(k)). *)
  let rec wire k offset =
    if k = 0 then begin
      let sw =
        B.add_node b ~name:(Printf.sprintf "sw%d" !switch_count) (Graph.Switch { tier = 0 })
      in
      incr switch_count;
      for i = 0 to n - 1 do
        ignore (B.add_cable b hosts.(offset + i) sw)
      done
    end
    else begin
      let sub = t.(k - 1) in
      let cells = sub + 1 in
      for c = 0 to cells - 1 do
        wire (k - 1) (offset + (c * sub))
      done;
      (* Full interconnection: host (b-1) of cell a <-> host a of cell b. *)
      for a = 0 to cells - 2 do
        for c = a + 1 to cells - 1 do
          let u = hosts.(offset + (a * sub) + (c - 1)) in
          let v = hosts.(offset + (c * sub) + a) in
          ignore (B.add_cable b u v)
        done
      done
    end
  in
  wire level 0;
  B.finish b

let random_fabric ~switches ~degree ~hosts ~seed =
  if switches * degree mod 2 <> 0 then
    invalid_arg "Builders.random_fabric: switches * degree must be even";
  if degree >= switches then invalid_arg "Builders.random_fabric: degree >= switches";
  if degree < 1 || switches < 2 || hosts < 0 then
    invalid_arg "Builders.random_fabric: bad sizes";
  let rng = Dcn_util.Prng.create seed in
  (* Pairing model: repeat until the multigraph is simple; then check
     connectivity.  Degree is small so this terminates quickly. *)
  let try_pairing () =
    let stubs = Array.make (switches * degree) 0 in
    Array.iteri (fun i _ -> stubs.(i) <- i / degree) stubs;
    Dcn_util.Prng.shuffle rng stubs;
    let seen = Hashtbl.create 64 in
    let edges = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < Array.length stubs do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let key = (min u v, max u v) in
      if u = v || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.add seen key ();
        edges := key :: !edges
      end;
      i := !i + 2
    done;
    if !ok then Some !edges else None
  in
  let rec build attempts =
    if attempts = 0 then invalid_arg "Builders.random_fabric: could not sample a simple graph"
    else
      match try_pairing () with
      | None -> build (attempts - 1)
      | Some edges ->
        let b = B.create () in
        let host_ids = Array.init hosts (fun _ -> B.add_node b Graph.Host) in
        let switch_ids =
          Array.init switches (fun i ->
              B.add_node b ~name:(Printf.sprintf "sw%d" i) (Graph.Switch { tier = 0 }))
        in
        List.iter (fun (u, v) -> ignore (B.add_cable b switch_ids.(u) switch_ids.(v))) edges;
        Array.iteri (fun i h -> ignore (B.add_cable b h switch_ids.(i mod switches))) host_ids;
        let g = B.finish b in
        if Graph.connected g then g else build (attempts - 1)
  in
  build 1000
