(** Canonical data-center topologies.

    The paper's evaluation runs on a DCN of "80 switches (with 128
    servers connected)", which is exactly a k = 8 fat-tree; the hardness
    reductions (Theorems 2 and 3) use parallel-link networks; Example 1
    uses a 3-node line.  The extra topologies (leaf–spine, BCube, random)
    serve the additional example scenarios and robustness tests. *)

val line : int -> Graph.t
(** [line n] is a chain of [n >= 2] host nodes joined by [n-1] cables —
    the Figure 1 network for [n = 3].  @raise Invalid_argument if
    [n < 2]. *)

val parallel : links:int -> Graph.t
(** Two hosts ([src = 0], [dst = 1]) joined by [links >= 1] parallel
    cables — the gadget network of the NP-hardness proofs. *)

val star : leaves:int -> Graph.t
(** One central switch (node id [leaves]) with [leaves >= 2] hosts. *)

val leaf_spine : spines:int -> leaves:int -> hosts_per_leaf:int -> Graph.t
(** Two-tier Clos: every leaf (tier 0) connects to every spine (tier 1);
    hosts hang off leaves.  Hosts get the lowest ids, then leaves, then
    spines. *)

val fat_tree : int -> Graph.t
(** [fat_tree k] for even [k >= 2]: [k] pods of [k/2] edge (tier 0) and
    [k/2] aggregation (tier 1) switches, [(k/2)^2] cores (tier 2),
    [k^3/4] hosts.  [fat_tree 8] is the paper's evaluation network:
    80 switches, 128 hosts.  @raise Invalid_argument if [k] is odd or
    [< 2]. *)

val bcube : n:int -> level:int -> Graph.t
(** [bcube ~n ~level] is BCube_level with [n]-port switches:
    [n^(level+1)] hosts, [(level+1) * n^level] switches; the level-[j]
    switch with index digits [d] connects the [n] hosts whose base-[n]
    address agrees with [d] except at digit [j].  @raise Invalid_argument
    if [n < 2] or [level < 0]. *)

val dcell : n:int -> level:int -> Graph.t
(** [dcell ~n ~level] is DCell_level with [n]-port level-0 switches: a
    DCell_0 is [n] hosts on one switch; a DCell_k is [t_(k-1) + 1]
    DCell_(k-1)s fully interconnected by host-to-host cables (host [u]
    of sub-cell [a] links to host [a] of sub-cell [u+1] at each level,
    the standard construction).  Hosts get ids first, then switches.
    @raise Invalid_argument if [n < 2], [level < 0], or the size
    explodes past 10_000 hosts. *)

val random_fabric :
  switches:int -> degree:int -> hosts:int -> seed:int -> Graph.t
(** Random [degree]-regular switch fabric (pairing model, resampled until
    simple and connected) with [hosts] hosts attached round-robin.
    @raise Invalid_argument if [switches * degree] is odd or
    [degree >= switches]. *)
