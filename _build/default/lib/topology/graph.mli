(** Data-center network graphs.

    Nodes are hosts or switches; every physical cable is modelled as a
    pair of *directed links*, one per direction, each carrying its own
    traffic and consuming its own power (the paper folds the two port
    ASICs of a cable into "the link"; we keep the two directions apart so
    that a full-duplex cable busy one way does not charge the other).
    Multigraphs are supported (the hardness gadgets of Theorems 2 and 3
    need parallel links).

    Graphs are immutable once built; construct them with {!Builder}. *)

type node_kind =
  | Host
  | Switch of { tier : int }
      (** [tier] is builder-defined: 0 = edge/leaf, 1 = aggregation/spine,
          2 = core, ... *)

type t

type node = int
(** Dense node identifiers in [\[0, num_nodes)]. *)

type link = int
(** Dense directed-link identifiers in [\[0, num_links)]. *)

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_node : t -> ?name:string -> node_kind -> node
  (** Returns the fresh node's id.  [name] defaults to ["h<i>"] or
      ["s<i>"] by kind. *)

  val add_cable : t -> node -> node -> link * link
  (** Adds a bidirectional cable between the two nodes and returns the
      (forward, backward) directed links.  Self-loops are rejected.
      @raise Invalid_argument on unknown nodes or a self-loop. *)

  val finish : t -> graph
  (** Freeze.  The builder must not be reused afterwards.
      @raise Invalid_argument on reuse. *)
end

val num_nodes : t -> int

val num_links : t -> int
(** Number of directed links (twice the cable count). *)

val num_cables : t -> int

val node_kind : t -> node -> node_kind

val node_name : t -> node -> string

val is_host : t -> node -> bool

val hosts : t -> node array
(** All host nodes, ascending. *)

val switches : t -> node array

val link_src : t -> link -> node

val link_dst : t -> link -> node

val reverse : t -> link -> link
(** The opposite direction of the same cable; an involution. *)

val out_links : t -> node -> link array
(** Outgoing directed links of a node.  Do not mutate. *)

val in_links : t -> node -> link array

val find_link : t -> src:node -> dst:node -> link option
(** Some directed link from [src] to [dst] (the first added, for
    multigraphs). *)

val links_between : t -> src:node -> dst:node -> link list

val is_path : t -> src:node -> dst:node -> link list -> bool
(** Whether the link sequence forms a directed walk from [src] to [dst]
    visiting no node twice (a simple path).  The empty list is a path iff
    [src = dst]. *)

val path_nodes : t -> src:node -> link list -> node list
(** Nodes visited by a walk starting at [src], beginning with [src].
    @raise Invalid_argument if consecutive links do not chain. *)

val degree_out : t -> node -> int

val remove_cables : t -> cables:link list -> t
(** Rebuild the graph without the given cables (each identified by
    either of its directed links).  Node ids and order are preserved;
    link ids are reassigned densely in the original cable order.  Used
    by the failure-resilience experiments.  @raise Invalid_argument on
    an unknown link id. *)

val connected : t -> bool
(** Whether every node is reachable from node 0 along directed links
    (true for all builder-produced graphs since cables are paired, but
    exposed for property tests). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: node/link counts by kind. *)
