lib/topology/paths.ml: Array Dcn_util Graph Hashtbl List
