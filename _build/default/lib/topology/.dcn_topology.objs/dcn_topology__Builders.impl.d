lib/topology/builders.ml: Array Dcn_util Graph Hashtbl List Printf
