(** Path computations on {!Graph}.

    A path is a list of directed links in travel order.  Weights are
    per-link, non-negative floats supplied by the caller (hop count by
    default); Frank–Wolfe uses marginal power costs, the shortest-path
    baseline uses hop counts. *)

type weight = Graph.link -> float

val hop_weight : weight
(** Constant [1.] per link. *)

type tree = {
  dist : float array;  (** per node; [infinity] if unreachable *)
  pred : int array;  (** incoming link on a shortest path; [-1] at the root
                         and at unreachable nodes *)
}

val shortest_tree :
  ?weight:weight ->
  ?banned_links:(Graph.link -> bool) ->
  ?banned_nodes:(Graph.node -> bool) ->
  Graph.t ->
  src:Graph.node ->
  tree
(** Single-source Dijkstra.  Banned links/nodes are treated as absent
    (the source itself is never banned).  Deterministic for fixed
    input.  @raise Invalid_argument on a negative weight. *)

val extract_path : Graph.t -> tree -> dst:Graph.node -> Graph.link list option
(** Path from the tree's source to [dst]; [None] if unreachable. *)

val shortest_path :
  ?weight:weight -> Graph.t -> src:Graph.node -> dst:Graph.node -> Graph.link list option

val path_cost : weight -> Graph.link list -> float

val k_shortest :
  ?weight:weight -> Graph.t -> k:int -> src:Graph.node -> dst:Graph.node -> Graph.link list list
(** Yen's algorithm: up to [k] loopless paths by increasing cost.
    @raise Invalid_argument if [k < 1]. *)

val all_simple_paths :
  ?max_hops:int -> ?limit:int -> Graph.t -> src:Graph.node -> dst:Graph.node -> Graph.link list list
(** Every simple path with at most [max_hops] links (default: unbounded),
    stopping after [limit] paths (default 10_000) as a safety valve for
    the exact small-instance solver.  Depth-first order. *)
