type node_kind = Host | Switch of { tier : int }

type node = int
type link = int

type t = {
  kinds : node_kind array;
  names : string array;
  srcs : int array;
  dsts : int array;
  rev : int array;
  out : int array array;
  incoming : int array array;
}

module Builder = struct
  type graph = t
  let _ = fun (x : graph) -> x

  type t = {
    mutable bkinds : node_kind list; (* reversed *)
    mutable bnames : string list; (* reversed *)
    mutable bnodes : int;
    mutable blinks : (int * int) list; (* reversed, directed *)
    mutable bnlinks : int;
    mutable finished : bool;
  }

  let create () =
    { bkinds = []; bnames = []; bnodes = 0; blinks = []; bnlinks = 0; finished = false }

  let check_live b = if b.finished then invalid_arg "Graph.Builder: reuse after finish"

  let add_node b ?name kind =
    check_live b;
    let id = b.bnodes in
    let name =
      match name with
      | Some n -> n
      | None -> (match kind with Host -> Printf.sprintf "h%d" id | Switch _ -> Printf.sprintf "s%d" id)
    in
    b.bkinds <- kind :: b.bkinds;
    b.bnames <- name :: b.bnames;
    b.bnodes <- id + 1;
    id

  let add_cable b u v =
    check_live b;
    if u < 0 || u >= b.bnodes || v < 0 || v >= b.bnodes then
      invalid_arg "Graph.Builder.add_cable: unknown node";
    if u = v then invalid_arg "Graph.Builder.add_cable: self-loop";
    let fwd = b.bnlinks and bwd = b.bnlinks + 1 in
    b.blinks <- (v, u) :: (u, v) :: b.blinks;
    b.bnlinks <- b.bnlinks + 2;
    (fwd, bwd)

  let finish b =
    check_live b;
    b.finished <- true;
    let n = b.bnodes and m = b.bnlinks in
    let kinds = Array.of_list (List.rev b.bkinds) in
    let names = Array.of_list (List.rev b.bnames) in
    let srcs = Array.make m 0 and dsts = Array.make m 0 in
    List.iteri
      (fun i (u, v) ->
        let id = m - 1 - i in
        srcs.(id) <- u;
        dsts.(id) <- v)
      b.blinks;
    (* Links were added in (fwd, bwd) pairs, so the reverse of link l is
       its pair partner. *)
    let rev = Array.init m (fun l -> if l land 1 = 0 then l + 1 else l - 1) in
    let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
    for l = 0 to m - 1 do
      out_deg.(srcs.(l)) <- out_deg.(srcs.(l)) + 1;
      in_deg.(dsts.(l)) <- in_deg.(dsts.(l)) + 1
    done;
    let out = Array.init n (fun v -> Array.make out_deg.(v) 0) in
    let incoming = Array.init n (fun v -> Array.make in_deg.(v) 0) in
    let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
    for l = 0 to m - 1 do
      let u = srcs.(l) and v = dsts.(l) in
      out.(u).(out_fill.(u)) <- l;
      out_fill.(u) <- out_fill.(u) + 1;
      incoming.(v).(in_fill.(v)) <- l;
      in_fill.(v) <- in_fill.(v) + 1
    done;
    { kinds; names; srcs; dsts; rev; out; incoming }
end

let num_nodes t = Array.length t.kinds
let num_links t = Array.length t.srcs
let num_cables t = num_links t / 2
let node_kind t v = t.kinds.(v)
let node_name t v = t.names.(v)

let is_host t v = match t.kinds.(v) with Host -> true | Switch _ -> false

let filter_nodes t pred =
  let acc = ref [] in
  for v = num_nodes t - 1 downto 0 do
    if pred v then acc := v :: !acc
  done;
  Array.of_list !acc

let hosts t = filter_nodes t (is_host t)
let switches t = filter_nodes t (fun v -> not (is_host t v))

let link_src t l = t.srcs.(l)
let link_dst t l = t.dsts.(l)
let reverse t l = t.rev.(l)
let out_links t v = t.out.(v)
let in_links t v = t.incoming.(v)

let find_link t ~src ~dst =
  let links = t.out.(src) in
  let rec scan i =
    if i >= Array.length links then None
    else if t.dsts.(links.(i)) = dst then Some links.(i)
    else scan (i + 1)
  in
  scan 0

let links_between t ~src ~dst =
  Array.fold_right (fun l acc -> if t.dsts.(l) = dst then l :: acc else acc) t.out.(src) []

let path_nodes t ~src links =
  let rec walk at = function
    | [] -> []
    | l :: rest ->
      if t.srcs.(l) <> at then invalid_arg "Graph.path_nodes: links do not chain"
      else t.dsts.(l) :: walk t.dsts.(l) rest
  in
  src :: walk src links

let is_path t ~src ~dst links =
  match links with
  | [] -> src = dst
  | _ -> (
    match path_nodes t ~src links with
    | exception Invalid_argument _ -> false
    | nodes ->
      let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> assert false in
      last nodes = dst
      && List.length (List.sort_uniq compare nodes) = List.length nodes)

let degree_out t v = Array.length t.out.(v)

let remove_cables t ~cables =
  let m = num_links t in
  let drop = Array.make (m / 2) false in
  List.iter
    (fun l ->
      if l < 0 || l >= m then invalid_arg "Graph.remove_cables: unknown link";
      drop.(l / 2) <- true)
    cables;
  let b = Builder.create () in
  Array.iteri (fun v kind -> ignore (Builder.add_node b ~name:t.names.(v) kind)) t.kinds;
  for c = 0 to (m / 2) - 1 do
    if not drop.(c) then ignore (Builder.add_cable b t.srcs.(2 * c) t.dsts.(2 * c))
  done;
  Builder.finish b

let connected t =
  let n = num_nodes t in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let count = ref 1 in
    let rec loop () =
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        Array.iter
          (fun l ->
            let w = t.dsts.(l) in
            if not seen.(w) then begin
              seen.(w) <- true;
              incr count;
              stack := w :: !stack
            end)
          t.out.(v);
        loop ()
    in
    loop ();
    !count = n
  end

let pp ppf t =
  let nh = Array.length (hosts t) and ns = Array.length (switches t) in
  Format.fprintf ppf "graph: %d hosts, %d switches, %d cables" nh ns (num_cables t)
