type weight = Graph.link -> float

let hop_weight _ = 1.

type tree = { dist : float array; pred : int array }

let shortest_tree ?(weight = hop_weight) ?(banned_links = fun _ -> false)
    ?(banned_nodes = fun _ -> false) g ~src =
  let n = Graph.num_nodes g in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let settled = Array.make n false in
  let cmp (d1, v1) (d2, v2) = compare (d1, v1) (d2, v2) in
  let heap = Dcn_util.Pqueue.create ~cmp in
  dist.(src) <- 0.;
  Dcn_util.Pqueue.add heap (0., src);
  let rec loop () =
    match Dcn_util.Pqueue.pop heap with
    | None -> ()
    | Some (d, v) ->
      if not settled.(v) then begin
        settled.(v) <- true;
        Array.iter
          (fun l ->
            if not (banned_links l) then begin
              let w = Graph.link_dst g l in
              if not (banned_nodes w) && not settled.(w) then begin
                let c = weight l in
                if c < 0. then invalid_arg "Paths.shortest_tree: negative weight";
                let nd = d +. c in
                if nd < dist.(w) then begin
                  dist.(w) <- nd;
                  pred.(w) <- l;
                  Dcn_util.Pqueue.add heap (nd, w)
                end
              end
            end)
          (Graph.out_links g v)
      end;
      loop ()
  in
  loop ();
  { dist; pred }

let extract_path g tree ~dst =
  if tree.dist.(dst) = infinity then None
  else
    let rec back v acc =
      match tree.pred.(v) with
      | -1 -> acc
      | l -> back (Graph.link_src g l) (l :: acc)
    in
    Some (back dst [])

let shortest_path ?weight g ~src ~dst =
  let tree = shortest_tree ?weight g ~src in
  extract_path g tree ~dst

let path_cost weight links = List.fold_left (fun acc l -> acc +. weight l) 0. links

let k_shortest ?(weight = hop_weight) g ~k ~src ~dst =
  if k < 1 then invalid_arg "Paths.k_shortest: k must be >= 1";
  match shortest_path ~weight g ~src ~dst with
  | None -> []
  | Some first ->
    let accepted = ref [ first ] in
    (* Candidate paths ordered by cost; keep the path list for ties. *)
    let cmp (c1, p1) (c2, p2) = compare (c1, p1) (c2, p2) in
    let candidates = Dcn_util.Pqueue.create ~cmp in
    let seen = Hashtbl.create 16 in
    Hashtbl.add seen first ();
    let rec take_prefix n = function
      | _ when n = 0 -> []
      | [] -> []
      | x :: tl -> x :: take_prefix (n - 1) tl
    in
    let rec fill () =
      if List.length !accepted >= k then ()
      else begin
        let last = List.hd !accepted in
        let last_len = List.length last in
        (* Spur from every prefix of the most recently accepted path. *)
        for i = 0 to last_len - 1 do
          let root = take_prefix i last in
          let root_nodes = Graph.path_nodes g ~src root in
          let spur_node = List.nth root_nodes i in
          (* Ban links used by previously accepted paths sharing this
             root, and ban root nodes except the spur node. *)
          let banned_link_tbl = Hashtbl.create 8 in
          List.iter
            (fun p ->
              if take_prefix i p = root then
                match List.nth_opt p i with
                | Some l -> Hashtbl.replace banned_link_tbl l ()
                | None -> ())
            !accepted;
          let banned_node_tbl = Hashtbl.create 8 in
          List.iteri
            (fun j v -> if j < i then Hashtbl.replace banned_node_tbl v ())
            root_nodes;
          let tree =
            shortest_tree ~weight
              ~banned_links:(Hashtbl.mem banned_link_tbl)
              ~banned_nodes:(Hashtbl.mem banned_node_tbl)
              g ~src:spur_node
          in
          match extract_path g tree ~dst with
          | None -> ()
          | Some spur ->
            let full = root @ spur in
            if (not (Hashtbl.mem seen full)) && Graph.is_path g ~src ~dst full then begin
              Hashtbl.add seen full ();
              Dcn_util.Pqueue.add candidates (path_cost weight full, full)
            end
        done;
        match Dcn_util.Pqueue.pop candidates with
        | None -> ()
        | Some (_, best) ->
          accepted := best :: !accepted;
          fill ()
      end
    in
    fill ();
    List.rev !accepted

let all_simple_paths ?(max_hops = max_int) ?(limit = 10_000) g ~src ~dst =
  let found = ref [] in
  let count = ref 0 in
  let visited = Array.make (Graph.num_nodes g) false in
  let rec dfs v acc depth =
    if !count < limit then
      if v = dst then begin
        found := List.rev acc :: !found;
        incr count
      end
      else if depth < max_hops then begin
        visited.(v) <- true;
        Array.iter
          (fun l ->
            let w = Graph.link_dst g l in
            if not visited.(w) then dfs w (l :: acc) (depth + 1))
          (Graph.out_links g v);
        visited.(v) <- false
      end
  in
  if src = dst then [ [] ]
  else begin
    dfs src [] 0;
    List.rev !found
  end
