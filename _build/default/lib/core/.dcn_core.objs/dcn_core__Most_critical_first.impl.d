lib/core/most_critical_first.ml: Array Dcn_flow Dcn_power Dcn_sched Dcn_topology Dcn_util Float Fun Instance List Printf
