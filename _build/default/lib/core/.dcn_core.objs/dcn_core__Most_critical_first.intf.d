lib/core/most_critical_first.mli: Dcn_sched Dcn_topology Instance
