lib/core/exact.ml: Array Dcn_flow Dcn_topology Instance Most_critical_first Printf
