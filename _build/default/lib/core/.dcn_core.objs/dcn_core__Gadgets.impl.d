lib/core/gadgets.ml: Array Dcn_flow Dcn_power Dcn_topology Dcn_util Fun Instance List Printf
