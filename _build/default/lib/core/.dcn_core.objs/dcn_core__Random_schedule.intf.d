lib/core/random_schedule.mli: Dcn_mcf Dcn_sched Dcn_topology Dcn_util Instance Most_critical_first Relaxation
