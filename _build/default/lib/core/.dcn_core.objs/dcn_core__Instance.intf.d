lib/core/instance.mli: Dcn_flow Dcn_power Dcn_topology Format
