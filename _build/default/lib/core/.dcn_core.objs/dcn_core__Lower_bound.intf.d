lib/core/lower_bound.mli: Dcn_mcf Instance Relaxation
