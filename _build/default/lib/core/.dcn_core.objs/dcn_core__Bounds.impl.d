lib/core/bounds.ml: Dcn_flow Dcn_power Float Format Gadgets Instance
