lib/core/serialize.mli: Dcn_sched Instance
