lib/core/gadgets.mli: Dcn_util Instance
