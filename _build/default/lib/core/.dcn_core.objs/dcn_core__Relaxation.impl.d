lib/core/relaxation.ml: Array Dcn_flow Dcn_mcf Dcn_power Dcn_topology Instance List
