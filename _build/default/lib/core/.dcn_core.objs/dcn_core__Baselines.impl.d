lib/core/baselines.ml: Array Dcn_flow Dcn_topology Dcn_util Hashtbl Instance List Most_critical_first Printf
