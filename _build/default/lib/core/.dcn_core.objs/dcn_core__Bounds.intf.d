lib/core/bounds.mli: Format Instance
