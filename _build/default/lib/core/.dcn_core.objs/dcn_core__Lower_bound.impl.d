lib/core/lower_bound.ml: Relaxation
