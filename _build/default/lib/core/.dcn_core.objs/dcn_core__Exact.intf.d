lib/core/exact.mli: Dcn_topology Instance Most_critical_first
