lib/core/greedy_ear.ml: Array Dcn_flow Dcn_power Dcn_sched Dcn_topology Hashtbl Instance List Printf
