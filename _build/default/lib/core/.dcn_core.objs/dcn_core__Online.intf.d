lib/core/online.mli: Dcn_sched Instance
