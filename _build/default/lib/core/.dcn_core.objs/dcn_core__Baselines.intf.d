lib/core/baselines.mli: Dcn_topology Dcn_util Instance Most_critical_first
