lib/core/joint_relaxation.ml: Array Dcn_flow Dcn_power Dcn_topology Float Hashtbl Instance Lazy List Printf
