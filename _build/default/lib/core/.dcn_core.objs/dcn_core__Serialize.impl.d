lib/core/serialize.ml: Buffer Dcn_flow Dcn_power Dcn_sched Dcn_topology Instance List Printf String
