lib/core/instance.ml: Array Dcn_flow Dcn_power Dcn_topology Format List Printf
