lib/core/random_schedule.ml: Array Dcn_flow Dcn_mcf Dcn_power Dcn_sched Dcn_topology Dcn_util Float Hashtbl Instance List Most_critical_first Printf Relaxation
