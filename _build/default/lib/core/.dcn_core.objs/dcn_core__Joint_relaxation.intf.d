lib/core/joint_relaxation.mli: Instance
