lib/core/greedy_ear.mli: Dcn_sched Dcn_topology Instance
