lib/core/online.ml: Array Dcn_flow Dcn_power Dcn_sched Dcn_topology Instance List
