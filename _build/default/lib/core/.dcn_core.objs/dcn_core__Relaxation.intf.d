lib/core/relaxation.mli: Dcn_flow Dcn_mcf Instance
