module Graph = Dcn_topology.Graph
module Paths = Dcn_topology.Paths
module Flow = Dcn_flow.Flow
module Timeline = Dcn_flow.Timeline
module Model = Dcn_power.Model

type t = {
  cost : float;
  lb : float;
  gap : float;
  iterations : int;
}

let golden = (sqrt 5. -. 1.) /. 2.

let golden_section ~iters f =
  let a = ref 0. and b = ref 1. in
  let x1 = ref (1. -. golden) and x2 = ref golden in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  for _ = 1 to iters do
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (golden *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (golden *. (!b -. !a));
      f2 := f !x2
    end
  done;
  (!a +. !b) /. 2.

let solve ?(max_iters = 60) ?(gap_tol = 1e-3) ?(line_search_iters = 24) inst =
  let g = inst.Instance.graph in
  let power = inst.Instance.power in
  let tl = Instance.timeline inst in
  let nk = Timeline.num_intervals tl in
  let m = Graph.num_links g in
  let flows = Instance.flow_array inst in
  let span_intervals =
    Array.map (fun f -> Array.of_list (Timeline.interval_indices_of tl f)) flows
  in
  let len = Array.init nk (Timeline.length tl) in
  (* Aggregate volume per (interval, link); per-flow detail is not
     needed for the bound, which keeps memory linear in K * m. *)
  let agg = Array.make_matrix nk m 0. in
  let env = Model.envelope power and env' = Model.envelope_deriv power in
  let objective a =
    let acc = ref 0. in
    for k = 0 to nk - 1 do
      for e = 0 to m - 1 do
        if a.(k).(e) > 0. then acc := !acc +. (len.(k) *. env (a.(k).(e) /. len.(k)))
      done
    done;
    !acc
  in
  (* Init: every flow spreads at its density on a hop-shortest path. *)
  Array.iteri
    (fun i (f : Flow.t) ->
      match Paths.shortest_path g ~src:f.src ~dst:f.dst with
      | None -> invalid_arg (Printf.sprintf "Joint_relaxation: flow %d disconnected" f.id)
      | Some p ->
        Array.iter
          (fun k ->
            let v = Flow.density f *. len.(k) in
            List.iter (fun e -> agg.(k).(e) <- agg.(k).(e) +. v) p)
          span_intervals.(i))
    flows;
  (* Aggregate volumes of the all-or-nothing point: per flow, the whole
     volume goes to the cheapest (interval, path) pair. *)
  let aon_agg = Array.make_matrix nk m 0. in
  let final_gap = ref infinity in
  let iterations = ref 0 in
  (try
     for iter = 1 to max_iters do
       iterations := iter;
       Array.iteri
         (fun k row ->
           Array.iteri (fun e _ -> aon_agg.(k).(e) <- 0.) row)
         aon_agg;
       (* Marginal cost of one unit of volume on link e in interval k is
          env'(rate); memoise per interval to share across flows. *)
       let weights =
         Array.init nk (fun k ->
             lazy (Array.init m (fun e -> env' (agg.(k).(e) /. len.(k)))))
       in
       let tree_cache = Hashtbl.create 64 in
       let tree_of k src =
         match Hashtbl.find_opt tree_cache (k, src) with
         | Some t -> t
         | None ->
           let w = Lazy.force weights.(k) in
           let t = Paths.shortest_tree ~weight:(fun e -> w.(e) +. 1e-12) g ~src in
           Hashtbl.add tree_cache (k, src) t;
           t
       in
       Array.iteri
         (fun i (f : Flow.t) ->
           let best = ref None in
           Array.iter
             (fun k ->
               let w = Lazy.force weights.(k) in
               let tree = tree_of k f.src in
               match Paths.extract_path g tree ~dst:f.dst with
               | None -> assert false
               | Some p ->
                 let c = List.fold_left (fun acc e -> acc +. w.(e)) 0. p in
                 (match !best with
                 | Some (bc, _, _) when bc <= c -> ()
                 | _ -> best := Some (c, k, p)))
             span_intervals.(i);
           match !best with
           | None -> assert false (* spans are non-empty *)
           | Some (_, k, p) ->
             List.iter (fun e -> aon_agg.(k).(e) <- aon_agg.(k).(e) +. f.volume) p)
         flows;
       (* Duality gap in volume space. *)
       let gap = ref 0. in
       for k = 0 to nk - 1 do
         let w = Lazy.force weights.(k) in
         for e = 0 to m - 1 do
           gap := !gap +. (w.(e) *. (agg.(k).(e) -. aon_agg.(k).(e)))
         done
       done;
       final_gap := Float.max 0. !gap;
       let here = objective agg in
       if !final_gap <= gap_tol *. Float.max 1e-12 here then raise Exit;
       let blend theta =
         let acc = ref 0. in
         for k = 0 to nk - 1 do
           for e = 0 to m - 1 do
             let v = ((1. -. theta) *. agg.(k).(e)) +. (theta *. aon_agg.(k).(e)) in
             if v > 0. then acc := !acc +. (len.(k) *. env (v /. len.(k)))
           done
         done;
         !acc
       in
       let theta = golden_section ~iters:line_search_iters blend in
       let theta = if blend theta < here then theta else 0. in
       if theta <= 1e-12 then raise Exit;
       for k = 0 to nk - 1 do
         for e = 0 to m - 1 do
           agg.(k).(e) <- ((1. -. theta) *. agg.(k).(e)) +. (theta *. aon_agg.(k).(e))
         done
       done
     done
   with Exit -> ());
  let cost = objective agg in
  { cost; lb = Float.max 0. (cost -. !final_gap); gap = !final_gap; iterations = !iterations }
