module Graph = Dcn_topology.Graph
module Flow = Dcn_flow.Flow
module Timeline = Dcn_flow.Timeline
module Model = Dcn_power.Model
module Schedule = Dcn_sched.Schedule
module Decompose = Dcn_mcf.Decompose
module Prng = Dcn_util.Prng

type config = {
  attempts : int;
  fw_config : Dcn_mcf.Frank_wolfe.config;
}

let default_config = { attempts = 20; fw_config = Dcn_mcf.Frank_wolfe.default_config }

type t = {
  schedule : Schedule.t;
  paths : (int * Graph.link list) list;
  energy : float;
  feasible : bool;
  attempts_used : int;
  candidates : (int * int) list;
  relaxation : Relaxation.t;
}

(* Candidate paths of one flow across all intervals, with the paper's
   combined weights w̄_P (keyed by the link list to merge duplicates). *)
let candidate_paths relax (f : Flow.t) =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun (isol : Relaxation.interval_solution) ->
      let lo, hi = isol.bounds in
      let frac = (hi -. lo) /. Flow.span_length f in
      match List.assoc_opt f.id isol.flow_paths with
      | None -> ()
      | Some paths ->
        List.iter
          (fun (wp : Decompose.weighted_path) ->
            let prev = try Hashtbl.find tbl wp.links with Not_found -> 0. in
            Hashtbl.replace tbl wp.links (prev +. (wp.weight *. frac)))
          paths)
    relax.Relaxation.intervals;
  let all = Hashtbl.fold (fun links w acc -> (links, w) :: acc) tbl [] in
  (* Deterministic order for reproducible sampling. *)
  List.sort compare all

let build_schedule inst chosen =
  let t0, t1 = Instance.horizon inst in
  let plans =
    List.map
      (fun (f : Flow.t) ->
        let path = List.assoc f.Flow.id chosen in
        {
          Schedule.flow = f;
          path;
          slots =
            [
              {
                Schedule.start = f.Flow.release;
                stop = f.Flow.deadline;
                rate = Flow.density f;
              };
            ];
        })
      inst.Instance.flows
  in
  Schedule.make ~graph:inst.Instance.graph ~power:inst.Instance.power
    ~horizon:(t0, t1) plans

let solve ?(config = default_config) ?relaxation ~rng inst =
  let relax =
    match relaxation with
    | Some r -> r
    | None -> Relaxation.solve ~fw_config:config.fw_config inst
  in
  let flows = inst.Instance.flows in
  let candidates =
    List.map (fun (f : Flow.t) -> (f.id, candidate_paths relax f)) flows
  in
  List.iter
    (fun (id, cands) ->
      if cands = [] then
        invalid_arg
          (Printf.sprintf "Random_schedule.solve: no candidate path for flow %d" id))
    candidates;
  let draw () =
    List.map
      (fun (id, cands) ->
        let weights = Array.of_list (List.map snd cands) in
        let idx = Prng.pick_weighted rng ~weights in
        (id, fst (List.nth cands idx)))
      candidates
  in
  let cap = inst.Instance.power.Model.cap in
  let evaluate chosen =
    let schedule = build_schedule inst chosen in
    let overload = Schedule.max_link_rate schedule -. cap in
    let feasible = overload <= 1e-6 *. Float.max 1. cap in
    (schedule, Schedule.energy schedule, feasible, overload)
  in
  let best = ref None in
  let attempts_used = ref 0 in
  (try
     for _ = 1 to Float.to_int (Float.max 1. (float_of_int config.attempts)) do
       incr attempts_used;
       let chosen = draw () in
       let schedule, energy, feasible, overload = evaluate chosen in
       let better =
         match !best with
         | None -> true
         | Some (_, _, best_energy, best_feasible, best_overload) ->
           if feasible && not best_feasible then true
           else if feasible && best_feasible then energy < best_energy
           else if (not feasible) && not best_feasible then overload < best_overload
           else false
       in
       if better then best := Some (chosen, schedule, energy, feasible, overload);
       (* A feasible draw is what the paper asks for; keep redrawing only
          while infeasible. *)
       if feasible then raise Exit
     done
   with Exit -> ());
  match !best with
  | None -> assert false (* attempts >= 1 *)
  | Some (chosen, schedule, energy, feasible, _) ->
    {
      schedule;
      paths = chosen;
      energy;
      feasible;
      attempts_used = !attempts_used;
      candidates = List.map (fun (id, cands) -> (id, List.length cands)) candidates;
      relaxation = relax;
    }

let refine inst t =
  let routing id = List.assoc id t.paths in
  Most_critical_first.solve inst ~routing
