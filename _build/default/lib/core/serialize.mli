(** Plain-text serialisation of instances and schedules.

    A small, versioned, line-oriented format so instances can be
    generated once, shared, and re-solved (`dcn solve --instance file`),
    and so schedules can be exported for external plotting.  Graphs are
    written structurally (nodes and cables), so any topology round-trips
    regardless of which builder produced it.

    {v
    dcnsched-instance v1
    # comment
    node <id> host|switch:<tier> [name]
    cable <node> <node>
    power <sigma> <mu> <alpha> <cap|inf>
    flow <id> <src> <dst> <volume> <release> <deadline>
    v} *)

val instance_to_string : Instance.t -> string

val instance_of_string : string -> Instance.t
(** @raise Failure with a line number on malformed input. *)

val schedule_to_string : Dcn_sched.Schedule.t -> string
(** One [plan] line per flow (id, path link ids) followed by its
    [slot] lines (start stop rate).  Export only — re-importing a
    schedule requires its instance, so no parser is provided.  (CSV
    export of experiment series lives next to the experiments, see
    {!Dcn_experiments.Fig2}.) *)
