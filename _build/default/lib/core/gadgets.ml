module Model = Dcn_power.Model
module Flow = Dcn_flow.Flow
module Builders = Dcn_topology.Builders
module Prng = Dcn_util.Prng

type three_partition = { integers : int list; m : int; b : int }

let make_three_partition ~integers =
  let count = List.length integers in
  if count = 0 || count mod 3 <> 0 then
    invalid_arg "Gadgets.make_three_partition: need 3m integers";
  let m = count / 3 in
  let sum = List.fold_left ( + ) 0 integers in
  if sum mod m <> 0 then
    invalid_arg "Gadgets.make_three_partition: sum not divisible by m";
  let b = sum / m in
  List.iter
    (fun a ->
      if 4 * a <= b || 2 * a >= b then
        invalid_arg
          (Printf.sprintf "Gadgets.make_three_partition: %d outside (B/4, B/2) for B=%d" a b))
    integers;
  { integers; m; b }

let solvable_three_partition ~m ~b ~rng =
  if m < 1 then invalid_arg "Gadgets.solvable_three_partition: m < 1";
  (* A triple (x, y, z) with x + y + z = b and each in (b/4, b/2): pick
     x near b/3 and split the rest.  b must be large enough for integer
     wiggle room. *)
  if b < 16 then invalid_arg "Gadgets.solvable_three_partition: b too small";
  let lo = (b / 4) + 1 and hi = ((b + 1) / 2) - 1 in
  let triple () =
    let rec draw () =
      let x = lo + Prng.int rng (hi - lo + 1) in
      let y = lo + Prng.int rng (hi - lo + 1) in
      let z = b - x - y in
      if z > b / 4 && 2 * z < b then (x, y, z) else draw ()
    in
    draw ()
  in
  let integers =
    List.concat_map (fun _ -> let x, y, z = triple () in [ x; y; z ]) (List.init m Fun.id)
  in
  let arr = Array.of_list integers in
  Prng.shuffle rng arr;
  make_three_partition ~integers:(Array.to_list arr)

let gadget_power ~mu ~alpha ~r_opt ~cap =
  Model.make ~sigma:(mu *. (alpha -. 1.) *. (r_opt ** alpha)) ~mu ~alpha ~cap ()

let three_partition_instance ?(mu = 1.) ?(alpha = 2.) ?links tp =
  let links = match links with Some k -> k | None -> 4 * tp.m in
  if links < tp.m then invalid_arg "Gadgets.three_partition_instance: links < m";
  let graph = Builders.parallel ~links in
  let b = float_of_int tp.b in
  let power = gadget_power ~mu ~alpha ~r_opt:b ~cap:(2. *. b) in
  let flows =
    List.mapi
      (fun id a ->
        Flow.make ~id ~src:0 ~dst:1 ~volume:(float_of_int a) ~release:0. ~deadline:1.)
      tp.integers
  in
  Instance.make ~graph ~power ~flows

let three_partition_opt_energy ?(mu = 1.) ?(alpha = 2.) tp =
  float_of_int tp.m *. alpha *. mu *. (float_of_int tp.b ** alpha)

type partition = { integers : int list; total : int }

let make_partition ~integers =
  if integers = [] then invalid_arg "Gadgets.make_partition: empty";
  List.iter (fun a -> if a <= 0 then invalid_arg "Gadgets.make_partition: non-positive") integers;
  { integers; total = List.fold_left ( + ) 0 integers }

let partition_instance ?(mu = 1.) ?(alpha = 2.) ?(links = 8) p =
  let graph = Builders.parallel ~links in
  let c = float_of_int p.total /. 2. in
  let power = gadget_power ~mu ~alpha ~r_opt:c ~cap:c in
  let flows =
    List.mapi
      (fun id a ->
        Flow.make ~id ~src:0 ~dst:1 ~volume:(float_of_int a) ~release:0. ~deadline:1.)
      p.integers
  in
  Instance.make ~graph ~power ~flows

let partition_yes_energy ?(mu = 1.) ?(alpha = 2.) p =
  let c = float_of_int p.total /. 2. in
  let sigma = mu *. (alpha -. 1.) *. (c ** alpha) in
  (2. *. sigma) +. (2. *. mu *. (c ** alpha))

let inapprox_ratio ~alpha = 1.5 *. (1. +. ((((2. /. 3.) ** alpha) -. 1.) /. alpha))
