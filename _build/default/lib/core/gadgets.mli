(** Executable versions of the paper's hardness reductions.

    Theorem 2 reduces 3-partition to DCFSR on a parallel-link network:
    with [sigma = mu (alpha - 1) B^alpha] (so the optimal operating rate
    of Lemma 3 is exactly [B]), a yes-instance packs the 3m flows onto m
    links run at rate [B] for the unit horizon, consuming exactly
    [m * alpha * mu * B^alpha].  Theorem 3 reduces partition with
    [C = B/2], giving the inapproximability ratio
    [3/2 (1 + ((2/3)^alpha - 1)/alpha)].

    These constructors let tests and benches check that the algorithms
    respect the structures the proofs rely on. *)

type three_partition = {
  integers : int list;  (** 3m integers, each in (B/4, B/2), summing to m*B *)
  m : int;
  b : int;
}

val make_three_partition : integers:int list -> three_partition
(** Validates the 3-partition shape.  @raise Invalid_argument if the
    count is not a multiple of 3, the sum is not divisible by m, or some
    integer is outside (B/4, B/2). *)

val solvable_three_partition : m:int -> b:int -> rng:Dcn_util.Prng.t -> three_partition
(** A random yes-instance: m triples each summing to [b], shuffled.
    [b] must be large enough to admit triples inside (b/4, b/2);
    @raise Invalid_argument otherwise. *)

val three_partition_instance :
  ?mu:float -> ?alpha:float -> ?links:int -> three_partition -> Instance.t
(** The Theorem 2 DCFSR instance: [links >= m] parallel links (default
    [4 * m]), 3m flows of volume [a_i] with span [\[0, 1\]],
    [sigma = mu (alpha-1) B^alpha], cap above [B]. *)

val three_partition_opt_energy : ?mu:float -> ?alpha:float -> three_partition -> float
(** [m * alpha * mu * B^alpha] — the optimum for a yes-instance. *)

type partition = { integers : int list; total : int }

val make_partition : integers:int list -> partition

val partition_instance : ?mu:float -> ?alpha:float -> ?links:int -> partition -> Instance.t
(** The Theorem 3 instance: parallel links with [C = B/2],
    [sigma = mu (alpha - 1) C^alpha], one flow per integer, unit
    horizon. *)

val partition_yes_energy : ?mu:float -> ?alpha:float -> partition -> float
(** [2 sigma + 2 mu C^alpha]: two links at full rate when an exact split
    exists. *)

val inapprox_ratio : alpha:float -> float
(** The Theorem 3 lower bound [3/2 (1 + ((2/3)^alpha - 1)/alpha)] on any
    polynomial-time approximation ratio. *)
