(** The joint (volume-coupled) fractional relaxation.

    The paper's LB fixes every flow's per-interval demand to its density
    [D_i] ("the smallest transmission rate for each flow").  A true
    schedule, however, may shift volume between the intervals of its
    span.  This module solves the *joint* convex relaxation

    {v
      minimise   sum over k of |I_k| * sum over e of f̂(x_e(k))
      subject to x_e(k) = sum over i of u_(i,e)(k) / |I_k|
                 per interval, u_(i,·)(k) routes v_(i,k) from src to dst
                 sum over k in span(i) of v_(i,k) = w_i,   v >= 0
    v}

    by Frank–Wolfe whose linearised subproblem picks, per flow, the
    single cheapest (interval, path) pair for the whole volume.  Its
    certified optimum is a lower bound on the per-interval-density LB
    (strictly more freedom), so comparing the two quantifies how much
    the paper's normaliser overstates the true floor. *)

type t = {
  cost : float;  (** achieved objective *)
  lb : float;  (** certified: cost - duality gap *)
  gap : float;
  iterations : int;
}

val solve : ?max_iters:int -> ?gap_tol:float -> ?line_search_iters:int -> Instance.t -> t
(** Defaults: 60 iterations, relative gap 1e-3, 24 line-search steps. *)
