(** The paper's analytical bounds, computed for a concrete instance.

    Theorem 6/7 bound Random-Schedule's expected approximation ratio by
    [O(lambda^alpha (n^2 log D)^(alpha-1))] with [lambda] the
    interval-skew factor of the timeline, [n] the number of flows and
    [D] the maximum density.  Theorem 3 lower-bounds every
    polynomial-time algorithm by [3/2 (1 + ((2/3)^alpha - 1)/alpha)].
    Comparing these with the ratios measured in the benchmarks shows how
    loose the worst-case analysis is in practice (the paper's Figure 2
    makes the same point implicitly). *)

type t = {
  lambda : float;  (** [(t_K - t_0) / min |I_k|] *)
  n : int;
  max_density : float;  (** [D] *)
  theorem6 : float;
      (** [lambda^alpha * (n^2 * max 1 (log D))^(alpha - 1)] — the
          growth term of Theorem 6 with unit constant *)
  theorem3 : float;  (** the universal lower bound on ratios *)
}

val compute : Instance.t -> t

val pp : Format.formatter -> t -> unit
