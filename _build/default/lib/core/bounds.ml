type t = {
  lambda : float;
  n : int;
  max_density : float;
  theorem6 : float;
  theorem3 : float;
}

let compute inst =
  let tl = Instance.timeline inst in
  let lambda = Dcn_flow.Timeline.lambda tl in
  let n = Instance.num_flows inst in
  let d = Dcn_flow.Flow.max_density inst.Instance.flows in
  let alpha = inst.Instance.power.Dcn_power.Model.alpha in
  let log_d = Float.max 1. (Float.log d) in
  let theorem6 =
    (lambda ** alpha)
    *. ((float_of_int (n * n) *. log_d) ** (alpha -. 1.))
  in
  { lambda; n; max_density = d; theorem6; theorem3 = Gadgets.inapprox_ratio ~alpha }

let pp ppf b =
  Format.fprintf ppf
    "lambda=%.2f n=%d D=%.2f theorem6=%.3g theorem3=%.4f" b.lambda b.n b.max_density
    b.theorem6 b.theorem3
