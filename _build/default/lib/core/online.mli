(** Online arrival with admission control.

    The deadline-flow systems the paper builds on (D3, D2TCP, PDQ)
    operate online: a flow reveals itself at its release time and the
    network must either guarantee its deadline or reject it up front.
    This module processes flows in release order over a
    capacity-limited network: each flow is routed on the cheapest
    marginal-energy path among those that can absorb its density in
    every interval of its span without breaching the link capacity;
    if no such path exists the flow is rejected (better never than
    late).  Accepted flows transmit at their densities, so all accepted
    deadlines are met (Theorem 4 reasoning) and the capacity constraint
    holds by construction. *)

type t = {
  schedule : Dcn_sched.Schedule.t;  (** accepted flows only *)
  accepted : int list;  (** flow ids, ascending *)
  rejected : int list;  (** flow ids, ascending *)
  energy : float;  (** Eq. (5) of the accepted schedule *)
  acceptance_rate : float;
}

val solve : Instance.t -> t
(** Deterministic.  With infinite capacity nothing is rejected and the
    result coincides with {!Greedy_ear}. *)
