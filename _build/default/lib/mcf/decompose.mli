(** Raghavan–Tompson flow decomposition.

    Turn one commodity's fractional link flows into weighted
    source→destination paths: repeatedly extract a path through links
    with positive residual flow, give it the bottleneck residual as
    weight, and subtract (Section V-A of the paper).  Cycles in the
    residual (possible only through numeric noise, since Frank–Wolfe
    iterates are convex combinations of paths) are cancelled on the fly
    and contribute no paths. *)

type weighted_path = { links : Dcn_topology.Graph.link list; weight : float }

val run :
  ?eps:float ->
  Dcn_topology.Graph.t ->
  src:Dcn_topology.Graph.node ->
  dst:Dcn_topology.Graph.node ->
  flow:float array ->
  weighted_path list
(** [flow] is indexed by link id; entries below [eps] (default [1e-9])
    are treated as zero.  The returned weights sum to (approximately)
    the commodity's routed amount; each [links] is a simple directed
    path from [src] to [dst].  The input array is not modified. *)

val total_weight : weighted_path list -> float
