lib/mcf/decompose.ml: Array Dcn_topology Float List
