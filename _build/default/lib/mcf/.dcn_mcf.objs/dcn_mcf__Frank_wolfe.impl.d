lib/mcf/frank_wolfe.ml: Array Commodity Dcn_topology Float Hashtbl List Printf
