lib/mcf/commodity.ml: Dcn_topology Dcn_util Format
