lib/mcf/commodity.mli: Dcn_topology Format
