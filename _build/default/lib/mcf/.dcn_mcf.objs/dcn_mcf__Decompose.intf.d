lib/mcf/decompose.mli: Dcn_topology
