lib/mcf/frank_wolfe.mli: Commodity Dcn_topology
