(** Commodities for the fractional MCF relaxation of Algorithm 2. *)

type t = private {
  index : int;  (** position in the problem's commodity array *)
  src : Dcn_topology.Graph.node;
  dst : Dcn_topology.Graph.node;
  demand : float;  (** flow per unit time, > 0 *)
}

val make : index:int -> src:Dcn_topology.Graph.node -> dst:Dcn_topology.Graph.node -> demand:float -> t
(** @raise Invalid_argument on non-positive demand or [src = dst]. *)

val pp : Format.formatter -> t -> unit
