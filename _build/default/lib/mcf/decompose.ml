module Graph = Dcn_topology.Graph

type weighted_path = { links : Dcn_topology.Graph.link list; weight : float }

type walk_outcome =
  | Reached of Graph.link list  (* chronological path src -> dst *)
  | Cycle_cancelled
  | Stuck of Graph.link list  (* reversed prefix ending in a dead end *)

let run ?(eps = 1e-9) g ~src ~dst ~flow =
  let residual = Array.copy flow in
  let n = Graph.num_nodes g in
  let paths = ref [] in
  (* Largest-residual out-link of v, or -1. *)
  let next_link v =
    let best = ref (-1) in
    Array.iter
      (fun l ->
        if residual.(l) > eps && (!best = -1 || residual.(l) > residual.(!best)) then
          best := l)
      (Graph.out_links g v);
    !best
  in
  let cancel links =
    let bottleneck =
      List.fold_left (fun acc e -> Float.min acc residual.(e)) infinity links
    in
    List.iter (fun e -> residual.(e) <- residual.(e) -. bottleneck) links;
    bottleneck
  in
  let walk () =
    let seen_at = Array.make n (-1) in
    let rec go v acc idx =
      if v = dst then Reached (List.rev acc)
      else begin
        seen_at.(v) <- idx;
        match next_link v with
        | -1 -> Stuck acc
        | l ->
          let w = Graph.link_dst g l in
          if seen_at.(w) >= 0 then begin
            (* Cycle w -> ... -> v -> w: the first idx - seen_at(w)
               entries of the reversed prefix plus l. *)
            let cycle = l :: List.filteri (fun i _ -> i < idx - seen_at.(w)) acc in
            ignore (cancel cycle);
            Cycle_cancelled
          end
          else go w (l :: acc) (idx + 1)
      end
    in
    go src [] 0
  in
  let rec extract () =
    if next_link src >= 0 then begin
      match walk () with
      | Reached links ->
        let weight = cancel links in
        paths := { links; weight } :: !paths;
        extract ()
      | Cycle_cancelled -> extract ()
      | Stuck [] -> () (* src itself is a numeric dead end; nothing to do *)
      | Stuck prefix ->
        (* Flow-conservation noise: discard the dangling prefix. *)
        ignore (cancel prefix);
        extract ()
    end
  in
  if src <> dst then extract ();
  List.rev !paths

let total_weight paths = List.fold_left (fun acc p -> acc +. p.weight) 0. paths
