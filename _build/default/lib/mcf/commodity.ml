(** A commodity of the fractional multicommodity flow problem: [demand]
    units of flow per unit time from [src] to [dst].  In Algorithm 2 of
    the paper one commodity is created per flow active in an interval,
    with demand equal to the flow's density [D_i]. *)

type t = {
  index : int;  (** position in the problem's commodity array *)
  src : Dcn_topology.Graph.node;
  dst : Dcn_topology.Graph.node;
  demand : float;  (** > 0 *)
}

let make ~index ~src ~dst ~demand =
  if not (demand > 0.) || not (Dcn_util.Approx.is_finite demand) then
    invalid_arg "Commodity.make: demand must be finite and > 0";
  if src = dst then invalid_arg "Commodity.make: src = dst";
  { index; src; dst; demand }

let pp ppf c =
  Format.fprintf ppf "commodity#%d %d->%d demand=%g" c.index c.src c.dst c.demand
