(* Tests for Dcn_power.Model: the paper's Eq. (1) power function, the
   optimal operating rate of Lemma 3, and the convex envelope used by
   the fractional relaxation. *)

open Dcn_power

let check_float = Alcotest.(check (float 1e-9))

let test_total_zero_is_free () =
  let m = Model.make ~sigma:5. ~mu:2. ~alpha:3. () in
  check_float "f(0) = 0" 0. (Model.total m 0.);
  check_float "f(2) = 5 + 2*8" 21. (Model.total m 2.)

let test_quadratic () =
  check_float "x^2" 9. (Model.total Model.quadratic 3.);
  check_float "g" 9. (Model.dynamic Model.quadratic 3.);
  check_float "g'" 6. (Model.dynamic_deriv Model.quadratic 3.)

let test_quartic () = check_float "x^4" 16. (Model.total Model.quartic 2.)

let test_invalid_params () =
  let expect_invalid f = Alcotest.(check bool) "invalid" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  expect_invalid (fun () -> Model.make ~sigma:(-1.) ~mu:1. ~alpha:2. ());
  expect_invalid (fun () -> Model.make ~sigma:0. ~mu:0. ~alpha:2. ());
  expect_invalid (fun () -> Model.make ~sigma:0. ~mu:1. ~alpha:1. ());
  expect_invalid (fun () -> Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap:0. ());
  expect_invalid (fun () -> Model.total Model.quadratic (-1.));
  (* Above-cap rates evaluate (capacity is checked by schedulers). *)
  check_float "above cap still evaluates" 4.
    (Model.total (Model.make ~sigma:0. ~mu:1. ~alpha:2. ~cap:1. ()) 2.)

let test_r_opt_lemma3 () =
  (* Lemma 3: R_opt = (sigma / (mu (alpha-1)))^(1/alpha).  Check that it
     indeed minimises the power rate. *)
  let m = Model.make ~sigma:8. ~mu:2. ~alpha:2. () in
  check_float "closed form" 2. (Model.r_opt m);
  let at = Model.power_rate m (Model.r_opt m) in
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "power rate minimal at r_opt vs %g" x)
        true
        (at <= Model.power_rate m x +. 1e-9))
    [ 0.5; 1.; 1.9; 2.1; 3.; 10. ]

let test_r_opt_theorem2_parameters () =
  (* Theorem 2 sets sigma = mu (alpha - 1) B^alpha so that R_opt = B. *)
  let b = 7. and alpha = 3. and mu = 2. in
  let m = Model.make ~sigma:(mu *. (alpha -. 1.) *. (b ** alpha)) ~mu ~alpha () in
  check_float "r_opt = B" b (Model.r_opt m)

let test_r_hat_cap () =
  let m = Model.make ~sigma:8. ~mu:2. ~alpha:2. ~cap:1.5 () in
  check_float "clamped" 1.5 (Model.r_hat m)

let test_envelope_below_f () =
  let m = Model.make ~sigma:4. ~mu:1. ~alpha:2. () in
  (* r_opt = 2. *)
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "envelope <= f at %g" x)
        true
        (Model.envelope m x <= Model.total m x +. 1e-9))
    [ 0.1; 0.5; 1.; 1.99; 2.; 2.01; 5.; 50. ]

let test_envelope_linear_then_equal () =
  let m = Model.make ~sigma:4. ~mu:1. ~alpha:2. () in
  (* Below r_opt = 2 the envelope is linear with slope f(2)/2 = 4. *)
  check_float "linear part" 4. (Model.envelope m 1.);
  check_float "equal past kink" (Model.total m 3.) (Model.envelope m 3.);
  check_float "zero at zero" 0. (Model.envelope m 0.)

let test_envelope_smooth_at_kink () =
  (* When r_opt <= cap the envelope is C^1: slope f(r)/r equals
     alpha mu r^(alpha-1) at r = r_opt. *)
  let m = Model.make ~sigma:4. ~mu:1. ~alpha:2. () in
  let r = Model.r_opt m in
  check_float "left slope = right slope" (Model.envelope_deriv m (r /. 2.))
    (Model.dynamic_deriv m r)

let test_envelope_sigma_zero () =
  (* With sigma = 0, f itself is convex: envelope = f. *)
  let m = Model.quadratic in
  List.iter
    (fun x -> check_float "envelope = f" (Model.total m x) (Model.envelope m x))
    [ 0.; 0.5; 1.; 7. ]

let test_envelope_convexity () =
  (* Midpoint convexity sampled on a grid. *)
  let m = Model.make ~sigma:10. ~mu:0.5 ~alpha:3. () in
  let pts = [ 0.; 0.5; 1.; 1.5; 2.; 3.; 4.; 6.; 9. ] in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let mid = Model.envelope m ((x +. y) /. 2.) in
          let avg = (Model.envelope m x +. Model.envelope m y) /. 2. in
          Alcotest.(check bool) "midpoint convex" true (mid <= avg +. 1e-9))
        pts)
    pts

let test_paper_default () =
  let m = Model.paper_default ~alpha:2. in
  check_float "r_opt = 10" 10. (Model.r_opt m);
  let m4 = Model.paper_default ~alpha:4. in
  check_float "r_opt = 10 (quartic)" 10. (Model.r_opt m4)

let test_energy () =
  let m = Model.quadratic in
  check_float "energy" 18. (Model.energy m ~rate:3. ~duration:2.)

(* --- discrete rate ladders ---------------------------------------- *)

let test_discrete_level_for () =
  let d = Model.quadratic in
  let ladder = Discrete.make d ~levels:[ 1.; 4.; 10. ] in
  Alcotest.(check (option (float 0.))) "exact hit" (Some 4.) (Discrete.level_for ladder 4.);
  Alcotest.(check (option (float 0.))) "rounds up" (Some 4.) (Discrete.level_for ladder 1.5);
  Alcotest.(check (option (float 0.))) "lowest" (Some 1.) (Discrete.level_for ladder 0.2);
  Alcotest.(check (option (float 0.))) "top" (Some 10.) (Discrete.level_for ladder 10.);
  Alcotest.(check (option (float 0.))) "above top" None (Discrete.level_for ladder 10.5);
  Alcotest.(check (option (float 0.))) "zero maps to off" None (Discrete.level_for ladder 0.)

let test_discrete_power () =
  let ladder = Discrete.make Model.quadratic ~levels:[ 2.; 8. ] in
  check_float "off" 0. (Discrete.power ladder 0.);
  check_float "rounds to 2" 4. (Discrete.power ladder 1.);
  check_float "rounds to 8" 64. (Discrete.power ladder 3.)

let test_discrete_geometric () =
  let ladder = Discrete.geometric Model.quadratic ~count:4 ~top:16. in
  Alcotest.(check (array (float 1e-9))) "ladder" [| 2.; 4.; 8.; 16. |]
    ladder.Discrete.levels

let test_discrete_invalid () =
  let invalid f = Alcotest.(check bool) "invalid" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  invalid (fun () -> Discrete.make Model.quadratic ~levels:[]);
  invalid (fun () -> Discrete.make Model.quadratic ~levels:[ 0. ]);
  invalid (fun () -> Discrete.make Model.quadratic ~levels:[ 2.; 2. ]);
  invalid (fun () -> Discrete.power (Discrete.make Model.quadratic ~levels:[ 1. ]) 2.)

let prop_envelope_below =
  QCheck.Test.make ~name:"power: envelope is a pointwise lower bound" ~count:500
    QCheck.(
      triple (float_bound_exclusive 10.) (float_bound_exclusive 5.)
        (float_bound_exclusive 20.))
    (fun (sigma, alpha_excess, x) ->
      let m = Model.make ~sigma ~mu:1. ~alpha:(1.01 +. alpha_excess) () in
      Model.envelope m x <= Model.total m x +. 1e-9)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "power/model",
      [
        Alcotest.test_case "f(0) free" `Quick test_total_zero_is_free;
        Alcotest.test_case "quadratic" `Quick test_quadratic;
        Alcotest.test_case "quartic" `Quick test_quartic;
        Alcotest.test_case "invalid params" `Quick test_invalid_params;
        Alcotest.test_case "Lemma 3 r_opt" `Quick test_r_opt_lemma3;
        Alcotest.test_case "Theorem 2 parameters" `Quick test_r_opt_theorem2_parameters;
        Alcotest.test_case "r_hat cap" `Quick test_r_hat_cap;
        Alcotest.test_case "envelope below f" `Quick test_envelope_below_f;
        Alcotest.test_case "envelope shape" `Quick test_envelope_linear_then_equal;
        Alcotest.test_case "envelope C1 at kink" `Quick test_envelope_smooth_at_kink;
        Alcotest.test_case "envelope sigma=0" `Quick test_envelope_sigma_zero;
        Alcotest.test_case "envelope convex" `Quick test_envelope_convexity;
        Alcotest.test_case "paper default" `Quick test_paper_default;
        Alcotest.test_case "energy" `Quick test_energy;
        qt prop_envelope_below;
      ] );
    ( "power/discrete",
      [
        Alcotest.test_case "level_for" `Quick test_discrete_level_for;
        Alcotest.test_case "power" `Quick test_discrete_power;
        Alcotest.test_case "geometric" `Quick test_discrete_geometric;
        Alcotest.test_case "invalid" `Quick test_discrete_invalid;
      ] );
  ]
