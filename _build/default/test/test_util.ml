(* Tests for Dcn_util: PRNG, stats, interval sets, priority queue,
   tables, approximate comparison. *)

open Dcn_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_changes_stream () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  let b = Prng.copy a in
  let xa = Prng.bits64 a in
  let xb = Prng.bits64 b in
  Alcotest.(check int64) "copy replays" xa xb;
  ignore (Prng.bits64 a);
  ignore (Prng.bits64 a);
  let _ = Prng.bits64 b in
  ()

let test_prng_split_diverges () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  Alcotest.(check bool) "split streams differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_int_bounds () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_invalid () =
  let g = Prng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_float_bounds () =
  let g = Prng.create 5 in
  for _ = 1 to 1000 do
    let x = Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0. && x < 2.5)
  done

let test_prng_uniform_range () =
  let g = Prng.create 9 in
  for _ = 1 to 500 do
    let x = Prng.uniform g ~lo:(-3.) ~hi:4. in
    Alcotest.(check bool) "in range" true (x >= -3. && x < 4.)
  done

let test_prng_uniform_degenerate () =
  let g = Prng.create 9 in
  check_float "lo = hi" 1.5 (Prng.uniform g ~lo:1.5 ~hi:1.5)

let test_prng_gaussian_moments () =
  let g = Prng.create 11 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Prng.gaussian g ~mean:10. ~stddev:3.) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  Alcotest.(check bool) "mean close" true (Float.abs (m -. 10.) < 0.15);
  Alcotest.(check bool) "stddev close" true (Float.abs (sd -. 3.) < 0.15)

let test_prng_gaussian_positive () =
  let g = Prng.create 13 in
  for _ = 1 to 2000 do
    let x = Prng.gaussian_positive g ~mean:1. ~stddev:5. in
    Alcotest.(check bool) "positive" true (x > 0.)
  done

let test_prng_pick_weighted () =
  let g = Prng.create 17 in
  let counts = Array.make 3 0 in
  let weights = [| 1.; 0.; 3. |] in
  for _ = 1 to 4000 do
    let i = Prng.pick_weighted g ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never picked" 0 counts.(1);
  Alcotest.(check bool) "ratio roughly 1:3" true
    (float_of_int counts.(2) /. float_of_int counts.(0) > 2.);
  Alcotest.check_raises "all-zero weights"
    (Invalid_argument "Prng.pick_weighted: zero total weight") (fun () ->
      ignore (Prng.pick_weighted g ~weights:[| 0.; 0. |]))

let test_prng_shuffle_permutation () =
  let g = Prng.create 19 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_mean_stddev () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_float "stddev" (sqrt (32. /. 7.)) (Stats.stddev xs)

let test_stats_singleton () =
  check_float "mean" 3. (Stats.mean [| 3. |]);
  check_float "stddev" 0. (Stats.stddev [| 3. |])

let test_stats_percentile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "p0" 1. (Stats.percentile xs 0.);
  check_float "p100" 4. (Stats.percentile xs 100.);
  check_float "median" 2.5 (Stats.median xs);
  check_float "p25" 1.75 (Stats.percentile xs 25.)

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]))

let test_stats_summary () =
  let s = Stats.summarize [| 1.; 2.; 3. |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  check_float "mean" 2. s.Stats.mean;
  check_float "min" 1. s.Stats.min;
  check_float "max" 3. s.Stats.max

(* ------------------------------------------------------------------ *)
(* Interval_set                                                       *)
(* ------------------------------------------------------------------ *)

let test_iset_empty () =
  Alcotest.(check bool) "is_empty" true (Interval_set.is_empty Interval_set.empty);
  check_float "total" 0. (Interval_set.total Interval_set.empty)

let test_iset_add_disjoint () =
  let s = Interval_set.add (Interval_set.add Interval_set.empty ~lo:0. ~hi:1.) ~lo:2. ~hi:3. in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "two intervals" [ (0., 1.); (2., 3.) ] (Interval_set.intervals s);
  check_float "total" 2. (Interval_set.total s)

let test_iset_add_merge () =
  let s =
    Interval_set.add_all Interval_set.empty [ (0., 2.); (1., 3.); (3., 4.); (10., 11.) ]
  in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "merged" [ (0., 4.); (10., 11.) ] (Interval_set.intervals s)

let test_iset_add_zero_length () =
  let s = Interval_set.add Interval_set.empty ~lo:1. ~hi:1. in
  Alcotest.(check bool) "still empty" true (Interval_set.is_empty s)

let test_iset_mem () =
  let s = Interval_set.add Interval_set.empty ~lo:1. ~hi:2. in
  Alcotest.(check bool) "inside" true (Interval_set.mem s 1.5);
  Alcotest.(check bool) "boundary" true (Interval_set.mem s 2.);
  Alcotest.(check bool) "outside" false (Interval_set.mem s 2.5)

let test_iset_covered_available () =
  let s = Interval_set.add_all Interval_set.empty [ (1., 3.); (5., 6.) ] in
  check_float "covered" 1.5 (Interval_set.covered_within s ~lo:2. ~hi:5.5);
  check_float "available" 2.0 (Interval_set.available_within s ~lo:2. ~hi:5.5);
  check_float "covered disjoint window" 0. (Interval_set.covered_within s ~lo:3.5 ~hi:4.5)

let test_iset_free_within () =
  let s = Interval_set.add_all Interval_set.empty [ (1., 3.); (5., 6.) ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "gaps" [ (0., 1.); (3., 5.); (6., 7.) ]
    (Interval_set.free_within s ~lo:0. ~hi:7.);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "window inside busy" []
    (Interval_set.free_within s ~lo:1.2 ~hi:2.8);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "window overlaps start" [ (3., 4.) ]
    (Interval_set.free_within s ~lo:2. ~hi:4.)

(* Property: available + covered = window length. *)
let prop_iset_partition =
  QCheck.Test.make ~name:"interval_set: covered + available = length" ~count:500
    QCheck.(
      pair
        (small_list (pair (float_bound_exclusive 10.) (float_bound_exclusive 10.)))
        (pair (float_bound_exclusive 10.) (float_bound_exclusive 10.)))
    (fun (ivs, (a, b)) ->
      let s =
        List.fold_left
          (fun acc (x, y) ->
            Interval_set.add acc ~lo:(Float.min x y) ~hi:(Float.max x y))
          Interval_set.empty ivs
      in
      let lo = Float.min a b and hi = Float.max a b in
      let c = Interval_set.covered_within s ~lo ~hi in
      let v = Interval_set.available_within s ~lo ~hi in
      Float.abs (c +. v -. (hi -. lo)) < 1e-9)

(* Property: free_within gaps are disjoint from the set and fill the
   complement exactly. *)
let prop_iset_free =
  QCheck.Test.make ~name:"interval_set: free_within complements covered" ~count:500
    QCheck.(
      small_list (pair (float_bound_exclusive 10.) (float_bound_exclusive 10.)))
    (fun ivs ->
      let s =
        List.fold_left
          (fun acc (x, y) ->
            Interval_set.add acc ~lo:(Float.min x y) ~hi:(Float.max x y))
          Interval_set.empty ivs
      in
      let free = Interval_set.free_within s ~lo:0. ~hi:10. in
      let free_total = List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0. free in
      let ok_disjoint =
        List.for_all
          (fun (a, b) -> Interval_set.covered_within s ~lo:a ~hi:b < 1e-9)
          free
      in
      ok_disjoint
      && Float.abs (free_total -. Interval_set.available_within s ~lo:0. ~hi:10.) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                             *)
(* ------------------------------------------------------------------ *)

let test_pqueue_basic () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  List.iter (Pqueue.add q) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Pqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Pqueue.peek q);
  Alcotest.(check (option int)) "pop1" (Some 1) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop2" (Some 1) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop3" (Some 3) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop4" (Some 4) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop5" (Some 5) (Pqueue.pop q);
  Alcotest.(check (option int)) "drained" None (Pqueue.pop q)

let test_pqueue_pop_exn_empty () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Pqueue.pop_exn: empty queue")
    (fun () -> ignore (Pqueue.pop_exn q))

let test_pqueue_to_sorted_list () =
  let q = Pqueue.of_list ~cmp:compare [ 3; 1; 2 ] in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Pqueue.to_sorted_list q);
  Alcotest.(check int) "unchanged" 3 (Pqueue.length q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue: drains in sorted order" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let q = Pqueue.of_list ~cmp:compare xs in
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Table                                                              *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let s =
    Table.render ~headers:[ "name"; "v" ] ~rows:[ [ "a"; "1" ]; [ "bb"; "22" ] ] ()
  in
  Alcotest.(check bool) "mentions header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + rule + 2 rows + trailing" 5 (List.length lines)

let test_table_series () =
  let s =
    Table.render_series ~x_label:"n" ~xs:[| 1.; 2. |]
      ~series:[ { Table.label = "rs"; values = [| 1.5; 1.25 |] } ]
      ()
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "contains label" true (contains s "rs");
  Alcotest.(check bool) "contains value" true (contains s "1.250")

let test_table_series_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Table.render_series ~x_label:"n" ~xs:[| 1. |]
            ~series:[ { Table.label = "a"; values = [| 1.; 2. |] } ]
            ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Approx                                                             *)
(* ------------------------------------------------------------------ *)

let test_approx () =
  Alcotest.(check bool) "equal within eps" true (Approx.equal 1. (1. +. 1e-12));
  Alcotest.(check bool) "not equal" false (Approx.equal 1. 1.1);
  Alcotest.(check bool) "leq" true (Approx.leq 1.0000000001 1. ~eps:1e-6);
  Alcotest.(check bool) "geq" true (Approx.geq 0.9999999999 1. ~eps:1e-6);
  check_float "clamp" 2. (Approx.clamp ~lo:0. ~hi:2. 5.);
  Alcotest.(check bool) "close_rel big numbers" true (Approx.close_rel 1e9 (1e9 +. 1.))

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "util/prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed changes stream" `Quick test_prng_seed_changes_stream;
        Alcotest.test_case "copy replays" `Quick test_prng_copy_independent;
        Alcotest.test_case "split diverges" `Quick test_prng_split_diverges;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
        Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
        Alcotest.test_case "uniform range" `Quick test_prng_uniform_range;
        Alcotest.test_case "uniform degenerate" `Quick test_prng_uniform_degenerate;
        Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        Alcotest.test_case "gaussian positive" `Quick test_prng_gaussian_positive;
        Alcotest.test_case "pick_weighted" `Quick test_prng_pick_weighted;
        Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
      ] );
    ( "util/stats",
      [
        Alcotest.test_case "mean stddev" `Quick test_stats_mean_stddev;
        Alcotest.test_case "singleton" `Quick test_stats_singleton;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "empty raises" `Quick test_stats_empty;
        Alcotest.test_case "summary" `Quick test_stats_summary;
      ] );
    ( "util/interval_set",
      [
        Alcotest.test_case "empty" `Quick test_iset_empty;
        Alcotest.test_case "add disjoint" `Quick test_iset_add_disjoint;
        Alcotest.test_case "add merge" `Quick test_iset_add_merge;
        Alcotest.test_case "zero length ignored" `Quick test_iset_add_zero_length;
        Alcotest.test_case "mem" `Quick test_iset_mem;
        Alcotest.test_case "covered/available" `Quick test_iset_covered_available;
        Alcotest.test_case "free_within" `Quick test_iset_free_within;
        qt prop_iset_partition;
        qt prop_iset_free;
      ] );
    ( "util/pqueue",
      [
        Alcotest.test_case "basic order" `Quick test_pqueue_basic;
        Alcotest.test_case "pop_exn empty" `Quick test_pqueue_pop_exn_empty;
        Alcotest.test_case "to_sorted_list" `Quick test_pqueue_to_sorted_list;
        qt prop_pqueue_sorts;
      ] );
    ( "util/table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "series" `Quick test_table_series;
        Alcotest.test_case "series mismatch" `Quick test_table_series_mismatch;
      ] );
    ("util/approx", [ Alcotest.test_case "comparisons" `Quick test_approx ]);
  ]
