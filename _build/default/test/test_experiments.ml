(* Integration tests for Dcn_experiments: tiny end-to-end runs of the
   figure/gadget/ablation harnesses, asserting the structural
   properties the paper's evaluation relies on. *)

module Fig2 = Dcn_experiments.Fig2
module Gadget_runs = Dcn_experiments.Gadget_runs
module Ablation = Dcn_experiments.Ablation
module Small_exact = Dcn_experiments.Small_exact

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let micro_params =
  {
    (Fig2.quick_params ~alpha:2.) with
    Fig2.flow_counts = [ 10 ];
    seeds = [ 1001; 1002 ];
  }

let test_fig2_micro () =
  let res = Fig2.run micro_params in
  match res.Fig2.points with
  | [ p ] ->
    Alcotest.(check int) "n" 10 p.Fig2.n;
    Alcotest.(check bool) "lb positive" true (p.Fig2.lb > 0.);
    (* Normalised energies are at least 1 (the LB is a lower bound for
       both schedule styles). *)
    Alcotest.(check bool) "rs >= 1" true (p.Fig2.rs >= 1. -. 1e-6);
    Alcotest.(check bool) "sp >= 1" true (p.Fig2.sp_mcf >= 1. -. 1e-6);
    Alcotest.(check bool) "rs feasible" true p.Fig2.rs_all_feasible;
    Alcotest.(check bool) "deadlines" true p.Fig2.rs_deadlines_met
  | _ -> Alcotest.fail "expected one point"

let test_fig2_render () =
  let res = Fig2.run micro_params in
  let s = Fig2.render res in
  Alcotest.(check bool) "mentions RS" true (contains s "RS/LB");
  Alcotest.(check bool) "mentions SP" true (contains s "SP+MCF/LB");
  Alcotest.(check bool) "row present" true (contains s "10")

let test_fig2_deterministic () =
  let r1 = Fig2.run micro_params and r2 = Fig2.run micro_params in
  Alcotest.(check bool) "same points" true (r1.Fig2.points = r2.Fig2.points)

let test_gadget_three_partition () =
  let r = Gadget_runs.three_partition () in
  Alcotest.(check (float 1e-6)) "exact = closed form" r.Gadget_runs.closed_form
    r.Gadget_runs.exact;
  Alcotest.(check bool) "rs >= opt" true (r.Gadget_runs.rs_over_opt >= 1. -. 1e-6);
  Alcotest.(check bool) "render" true
    (contains (Gadget_runs.render_three_partition r) "closed form")

let test_gadget_partition () =
  let r = Gadget_runs.partition () in
  Alcotest.(check (float 1e-6)) "exact = yes energy" r.Gadget_runs.yes_energy
    r.Gadget_runs.exact;
  Alcotest.(check (float 1e-9)) "ratio formula" (13. /. 12.) r.Gadget_runs.inapprox_ratio

let test_ablation_power_down () =
  let rows = Ablation.power_down ~n:20 ~sigmas:[ 0.; 50. ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Ablation.power_down_row) ->
      Alcotest.(check bool) "idle <= total (rs)" true (r.rs_idle <= r.rs_energy +. 1e-9);
      Alcotest.(check bool) "idle <= total (sp)" true (r.sp_idle <= r.sp_energy +. 1e-9);
      Alcotest.(check bool) "links positive" true
        (r.rs_active_links > 0 && r.sp_active_links > 0))
    rows;
  (match rows with
  | [ zero; fifty ] ->
    Alcotest.(check (float 1e-9)) "sigma 0 -> no idle energy" 0. zero.Ablation.rs_idle;
    Alcotest.(check bool) "sigma 50 -> idle energy appears" true
      (fifty.Ablation.rs_idle > 0.)
  | _ -> Alcotest.fail "unexpected rows");
  Alcotest.(check bool) "render" true
    (contains (Ablation.render_power_down rows) "sigma")

let test_ablation_capacity () =
  let rows = Ablation.capacity_stress ~n:10 ~caps:[ infinity; 1e-3 ] () in
  (match rows with
  | [ unlimited; tiny ] ->
    Alcotest.(check bool) "unlimited feasible" true unlimited.Ablation.feasible;
    Alcotest.(check bool) "tiny cap infeasible" false tiny.Ablation.feasible;
    Alcotest.(check bool) "tiny cap exhausted attempts" true
      (tiny.Ablation.attempts_used > 1)
  | _ -> Alcotest.fail "unexpected rows");
  Alcotest.(check bool) "render" true
    (contains (Ablation.render_capacity rows) "capacity")

let test_ablation_refinement () =
  let rows = Ablation.refinement ~seeds:[ 21 ] ~ns:[ 10 ] () in
  (match rows with
  | [ r ] ->
    Alcotest.(check bool) "ratios >= 1" true
      (r.Ablation.rs_over_lb >= 1. -. 1e-6 && r.Ablation.refined_over_lb > 0.)
  | _ -> Alcotest.fail "unexpected rows");
  Alcotest.(check bool) "render" true
    (contains (Ablation.render_refinement rows) "gain")

let test_ablation_routing () =
  let rows = Ablation.routing_comparison ~seeds:[ 31 ] ~ns:[ 10 ] () in
  (match rows with
  | [ r ] ->
    Alcotest.(check bool) "all above LB" true
      (r.Ablation.sp_over_lb >= 1. -. 1e-6
      && r.Ablation.ecmp_over_lb >= 1. -. 1e-6
      && r.Ablation.rs_routing_over_lb >= 1. -. 1e-6)
  | _ -> Alcotest.fail "unexpected rows");
  Alcotest.(check bool) "render" true
    (contains (Ablation.render_routing rows) "ECMP")

let test_trace_eval () =
  let rows = Dcn_experiments.Trace_eval.run ~horizon:30. ~loads:[ 1. ] () in
  (match rows with
  | [ r ] ->
    Alcotest.(check bool) "flows generated" true (r.Dcn_experiments.Trace_eval.n_flows > 0);
    Alcotest.(check bool) "all above LB" true
      (r.Dcn_experiments.Trace_eval.sp >= 1. -. 1e-6
      && r.Dcn_experiments.Trace_eval.rs >= 1. -. 1e-6);
    Alcotest.(check bool) "deadlines" true r.Dcn_experiments.Trace_eval.deadlines_met
  | _ -> Alcotest.fail "unexpected rows");
  Alcotest.(check bool) "render" true
    (contains (Dcn_experiments.Trace_eval.render rows) "load")

let test_bounds_check () =
  let rows = Dcn_experiments.Bounds_check.run ~ns:[ 10 ] () in
  (match rows with
  | [ r ] ->
    Alcotest.(check bool) "theorem6 dominates measured" true
      (r.Dcn_experiments.Bounds_check.theorem6_term
      > r.Dcn_experiments.Bounds_check.measured)
  | _ -> Alcotest.fail "unexpected rows");
  Alcotest.(check bool) "render" true
    (contains (Dcn_experiments.Bounds_check.render rows) "Thm 6")

let test_ablation_split_and_rates () =
  let split = Ablation.splitting ~n:8 ~parts:[ 1; 4 ] () in
  (match split with
  | [ one; four ] ->
    Alcotest.(check bool) "splitting helps (or at least not hurts)" true
      (four.Ablation.rs_over_lb <= one.Ablation.rs_over_lb +. 0.05)
  | _ -> Alcotest.fail "unexpected rows");
  let rates = Ablation.rate_levels ~n:8 ~counts:[ 2; 8 ] () in
  (match rates with
  | [ coarse; fine ] ->
    Alcotest.(check bool) "finer ladder cheaper" true
      (fine.Ablation.hold_overhead <= coarse.Ablation.hold_overhead +. 1e-9);
    Alcotest.(check bool) "overheads at least 1" true
      (fine.Ablation.work_overhead >= 1. -. 1e-6)
  | _ -> Alcotest.fail "unexpected rows")

let test_ablation_admission () =
  let rows = Ablation.admission ~loads:[ 0.5; 6. ] () in
  (match rows with
  | [ light; heavy ] ->
    Alcotest.(check bool) "acceptance within [0,1]" true
      (light.Ablation.acceptance <= 1. && heavy.Ablation.acceptance >= 0.);
    Alcotest.(check bool) "heavier load, lower acceptance" true
      (heavy.Ablation.acceptance <= light.Ablation.acceptance +. 1e-9)
  | _ -> Alcotest.fail "unexpected rows");
  Alcotest.(check bool) "render" true
    (contains (Ablation.render_admission rows) "acceptance")

let test_ablation_lb_tightness () =
  let rows = Ablation.lb_tightness ~seeds:[ 41 ] ~ns:[ 8 ] () in
  (match rows with
  | [ r ] ->
    Alcotest.(check bool) "paper lb >= joint lb" true
      (r.Ablation.overstatement >= 1. -. 0.02)
  | _ -> Alcotest.fail "unexpected rows");
  Alcotest.(check bool) "render" true
    (contains (Ablation.render_lb rows) "joint")

let test_small_exact () =
  let rows = Small_exact.run ~seeds:[ 1; 2 ] () in
  List.iter
    (fun (r : Small_exact.row) ->
      Alcotest.(check bool) "ratio >= 1" true (r.ratio >= 1. -. 1e-6))
    rows;
  Alcotest.(check bool) "render" true (contains (Small_exact.render rows) "RS/OPT")

let suite =
  [
    ( "experiments",
      [
        Alcotest.test_case "fig2 micro" `Slow test_fig2_micro;
        Alcotest.test_case "fig2 render" `Slow test_fig2_render;
        Alcotest.test_case "fig2 deterministic" `Slow test_fig2_deterministic;
        Alcotest.test_case "gadget 3-partition" `Quick test_gadget_three_partition;
        Alcotest.test_case "gadget partition" `Quick test_gadget_partition;
        Alcotest.test_case "ablation power-down" `Slow test_ablation_power_down;
        Alcotest.test_case "ablation capacity" `Slow test_ablation_capacity;
        Alcotest.test_case "ablation refinement" `Slow test_ablation_refinement;
        Alcotest.test_case "ablation routing" `Slow test_ablation_routing;
        Alcotest.test_case "small exact" `Slow test_small_exact;
        Alcotest.test_case "trace eval" `Slow test_trace_eval;
        Alcotest.test_case "ablation split+rates" `Slow test_ablation_split_and_rates;
        Alcotest.test_case "ablation admission" `Slow test_ablation_admission;
        Alcotest.test_case "ablation lb tightness" `Slow test_ablation_lb_tightness;
        Alcotest.test_case "bounds check" `Slow test_bounds_check;
      ] );
  ]
