(* Independent numeric optimiser used as a reference in tests.

   Solves the convex program underlying (P1) in execution-time space:

     minimise    sum_i  h_i * w_i^alpha * tau_i^(1 - alpha)
     subject to  sum_{i in S_c} tau_i <= len_c      for each constraint c
                 lo <= tau_i <= span_i

   (tau_i = w_i / s_i; constraints are the per-link interval-demand
   conditions).  Quadratic-penalty method with backtracking gradient
   descent — deliberately different machinery from the combinatorial
   algorithms it checks.  The result is scaled into the feasible region,
   so it is a true upper bound on the optimum and converges to it. *)

type item = { volume : float; span : float; hops : int }

type constraint_row = { length : float; members : int list }

let solve ~alpha ~items ~constraints =
  let items = Array.of_list items in
  let n = Array.length items in
  let constraints = Array.of_list constraints in
  let lo = 1e-5 in
  let coef i = float_of_int items.(i).hops *. (items.(i).volume ** alpha) in
  let energy tau =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (coef i *. (tau.(i) ** (1. -. alpha)))
    done;
    !acc
  in
  let penalized rho tau =
    let pen = ref 0. in
    Array.iter
      (fun c ->
        let used = List.fold_left (fun acc i -> acc +. tau.(i)) 0. c.members in
        let viol = used -. c.length in
        if viol > 0. then pen := !pen +. (viol *. viol))
      constraints;
    energy tau +. (rho *. !pen)
  in
  let project tau =
    Array.mapi (fun i x -> Float.max lo (Float.min items.(i).span x)) tau
  in
  let tau = ref (project (Array.map (fun it -> it.span /. 2.) items)) in
  let rho = ref 10. in
  for _round = 1 to 10 do
    for _iter = 1 to 400 do
      let grad = Array.make n 0. in
      for i = 0 to n - 1 do
        grad.(i) <- (1. -. alpha) *. coef i *. (!tau.(i) ** (-.alpha))
      done;
      Array.iter
        (fun c ->
          let used = List.fold_left (fun acc i -> acc +. !tau.(i)) 0. c.members in
          let viol = used -. c.length in
          if viol > 0. then
            List.iter (fun i -> grad.(i) <- grad.(i) +. (2. *. !rho *. viol)) c.members)
        constraints;
      let here = penalized !rho !tau in
      let gnorm2 = Array.fold_left (fun acc g -> acc +. (g *. g)) 0. grad in
      if gnorm2 > 0. then begin
        (* Backtracking line search with an Armijo-style acceptance. *)
        let step = ref (1. /. sqrt gnorm2) in
        let accepted = ref false in
        while (not !accepted) && !step > 1e-14 do
          let candidate =
            project (Array.mapi (fun i x -> x -. (!step *. grad.(i))) !tau)
          in
          if penalized !rho candidate < here then begin
            tau := candidate;
            accepted := true
          end
          else step := !step /. 2.
        done
      end
    done;
    rho := !rho *. 10.
  done;
  (* Scale into the feasible region: shorter executions are faster and
     hence feasible; energy only grows, so this is a valid upper bound. *)
  let theta =
    Array.fold_left
      (fun acc c ->
        let used = List.fold_left (fun s i -> s +. !tau.(i)) 0. c.members in
        if used > 0. then Float.min acc (c.length /. used) else acc)
      1. constraints
  in
  energy (Array.map (fun x -> Float.max lo (x *. theta)) !tau)

(* Per-link interval-demand constraints for a routed instance: for every
   link, for every window [release, deadline] drawn from the flows on
   that link, the flows living inside must fit. *)
let p1_energy ~alpha inst ~routing =
  let flows = Dcn_core.Instance.flow_array inst in
  let items =
    Array.to_list
      (Array.map
         (fun (f : Dcn_flow.Flow.t) ->
           {
             volume = f.volume;
             span = Dcn_flow.Flow.span_length f;
             hops = List.length (routing f.id);
           })
         flows)
  in
  let link_members = Hashtbl.create 16 in
  Array.iteri
    (fun i (f : Dcn_flow.Flow.t) ->
      List.iter
        (fun l ->
          let prev = try Hashtbl.find link_members l with Not_found -> [] in
          Hashtbl.replace link_members l (i :: prev))
        (routing f.id))
    flows;
  let constraints = ref [] in
  Hashtbl.iter
    (fun _l members ->
      let rels = List.map (fun i -> flows.(i).Dcn_flow.Flow.release) members in
      let deads = List.map (fun i -> flows.(i).Dcn_flow.Flow.deadline) members in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if b > a then begin
                let inside =
                  List.filter
                    (fun i ->
                      flows.(i).Dcn_flow.Flow.release >= a -. 1e-12
                      && flows.(i).Dcn_flow.Flow.deadline <= b +. 1e-12)
                    members
                in
                if inside <> [] then
                  constraints := { length = b -. a; members = inside } :: !constraints
              end)
            (List.sort_uniq compare deads))
        (List.sort_uniq compare rels))
    link_members;
  solve ~alpha ~items ~constraints:!constraints

(* Single-processor speed scaling (for the YDS tests): one "link". *)
let ssp_energy ~alpha jobs =
  let jobs = Array.of_list jobs in
  let items =
    Array.to_list
      (Array.map
         (fun (j : Dcn_speed_scaling.Job.t) ->
           { volume = j.weight; span = j.deadline -. j.release; hops = 1 })
         jobs)
  in
  let constraints = ref [] in
  let rels = Array.to_list (Array.map (fun (j : Dcn_speed_scaling.Job.t) -> j.release) jobs) in
  let deads =
    Array.to_list (Array.map (fun (j : Dcn_speed_scaling.Job.t) -> j.deadline) jobs)
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if b > a then begin
            let inside = ref [] in
            Array.iteri
              (fun i (j : Dcn_speed_scaling.Job.t) ->
                if j.release >= a -. 1e-12 && j.deadline <= b +. 1e-12 then
                  inside := i :: !inside)
              jobs;
            if !inside <> [] then
              constraints := { length = b -. a; members = !inside } :: !constraints
          end)
        (List.sort_uniq compare deads))
    (List.sort_uniq compare rels);
  solve ~alpha ~items ~constraints:!constraints
