(* Tests for Dcn_speed_scaling: EDF placement and the YDS optimal
   speed-scaling algorithm.  YDS is cross-checked against an independent
   numeric convex optimiser (gradient descent with penalty on the
   classical interval-demand constraints) and against feasible random
   perturbations. *)

open Dcn_speed_scaling

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* EDF                                                                *)
(* ------------------------------------------------------------------ *)

let task ~id ~r ~d ~len = { Edf.task_id = id; release = r; deadline = d; duration = len }

let total_run slots id =
  List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0. (Edf.slots_of_task slots id)

let test_edf_single () =
  match Edf.place ~free:[ (0., 10.) ] [ task ~id:0 ~r:1. ~d:5. ~len:2. ] with
  | Error _ -> Alcotest.fail "feasible task rejected"
  | Ok slots ->
    check_float "runs exactly duration" 2. (total_run slots 0);
    List.iter
      (fun (s : Edf.slot) ->
        Alcotest.(check bool) "within span" true (s.start >= 1. && s.stop <= 5.))
      slots

let test_edf_priority_order () =
  (* Two tasks released together: the earlier deadline runs first. *)
  match
    Edf.place ~free:[ (0., 10.) ]
      [ task ~id:0 ~r:0. ~d:8. ~len:2.; task ~id:1 ~r:0. ~d:4. ~len:2. ]
  with
  | Error _ -> Alcotest.fail "feasible set rejected"
  | Ok slots ->
    (match slots with
    | first :: _ -> Alcotest.(check int) "earliest deadline first" 1 first.Edf.task_id
    | [] -> Alcotest.fail "no slots")

let test_edf_preemption () =
  (* A long lax task is preempted by an urgent arrival. *)
  match
    Edf.place ~free:[ (0., 10.) ]
      [ task ~id:0 ~r:0. ~d:10. ~len:5.; task ~id:1 ~r:1. ~d:3. ~len:2. ]
  with
  | Error _ -> Alcotest.fail "feasible set rejected"
  | Ok slots ->
    check_float "task 0 work" 5. (total_run slots 0);
    check_float "task 1 work" 2. (total_run slots 1);
    (* Task 1 must run exactly in [1,3]. *)
    Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
      "urgent runs in its window" [ (1., 3.) ] (Edf.slots_of_task slots 1)

let test_edf_respects_free_slots () =
  match
    Edf.place ~free:[ (0., 1.); (2., 3.) ] [ task ~id:0 ~r:0. ~d:3. ~len:2. ]
  with
  | Error _ -> Alcotest.fail "feasible task rejected"
  | Ok slots ->
    Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
      "runs in both free slots" [ (0., 1.); (2., 3.) ] (Edf.slots_of_task slots 0)

let test_edf_infeasible () =
  match Edf.place ~free:[ (0., 10.) ] [ task ~id:7 ~r:0. ~d:1. ~len:2. ] with
  | Ok _ -> Alcotest.fail "should be infeasible"
  | Error info ->
    Alcotest.(check int) "culprit" 7 info.Edf.missed_task;
    check_float "missed deadline" 1. info.Edf.missed_deadline;
    Alcotest.(check bool) "owes about 1" true (Float.abs (info.Edf.remaining -. 1.) < 1e-6)

let test_edf_infeasible_gap () =
  (* The task's whole span falls into a hole of the free time. *)
  match Edf.place ~free:[ (0., 1.); (5., 6.) ] [ task ~id:3 ~r:2. ~d:4. ~len:1. ] with
  | Ok _ -> Alcotest.fail "should be infeasible"
  | Error info -> Alcotest.(check int) "culprit" 3 info.Edf.missed_task

let test_edf_zero_duration () =
  match Edf.place ~free:[ (0., 1.) ] [ task ~id:0 ~r:0. ~d:1. ~len:0. ] with
  | Ok slots -> Alcotest.(check int) "no slots needed" 0 (List.length slots)
  | Error _ -> Alcotest.fail "zero work is trivially feasible"

let test_edf_feasible_helper () =
  Alcotest.(check bool) "feasible" true
    (Edf.feasible ~free:[ (0., 4.) ]
       [ task ~id:0 ~r:0. ~d:2. ~len:2.; task ~id:1 ~r:0. ~d:4. ~len:2. ]);
  Alcotest.(check bool) "infeasible" false
    (Edf.feasible ~free:[ (0., 4.) ]
       [ task ~id:0 ~r:0. ~d:2. ~len:2.; task ~id:1 ~r:0. ~d:3. ~len:2. ])

(* Property: when EDF succeeds, every task receives exactly its duration,
   inside its span, inside free time, with no two slots overlapping. *)
let gen_edf_instance =
  QCheck.make
    QCheck.Gen.(
      let* n = 1 -- 6 in
      let* tasks =
        list_repeat n
          (let* r = float_bound_inclusive 8. in
           let* len_span = float_bound_inclusive 4. in
           let* frac = float_bound_inclusive 1. in
           return (r, r +. 0.2 +. len_span, frac))
      in
      return tasks)

let prop_edf_conservation =
  QCheck.Test.make ~name:"edf: successful placement conserves work" ~count:300
    gen_edf_instance (fun raw ->
      let tasks =
        List.mapi
          (fun i (r, d, frac) ->
            (* duration <= span length, so a singleton is feasible, but
               a collection might not be: both outcomes are exercised. *)
            task ~id:i ~r ~d ~len:(frac *. (d -. r) /. 2.))
          raw
      in
      match Edf.place ~free:[ (0., 20.) ] tasks with
      | Error _ -> true
      | Ok slots ->
        let sorted =
          List.sort (fun (a : Edf.slot) b -> compare a.start b.start) slots
        in
        let rec disjoint = function
          | (a : Edf.slot) :: (b : Edf.slot) :: rest ->
            a.stop <= b.start +. 1e-9 && disjoint (b :: rest)
          | _ -> true
        in
        disjoint sorted
        && List.for_all
             (fun (tk : Edf.task) ->
               Float.abs (total_run slots tk.task_id -. tk.duration) < 1e-6
               && List.for_all
                    (fun (a, b) -> a >= tk.release -. 1e-9 && b <= tk.deadline +. 1e-9)
                    (Edf.slots_of_task slots tk.task_id))
             tasks)

(* ------------------------------------------------------------------ *)
(* YDS                                                                *)
(* ------------------------------------------------------------------ *)

let job ~id ~w ~r ~d = Job.make ~id ~weight:w ~release:r ~deadline:d

let test_yds_single_job () =
  let j = job ~id:0 ~w:6. ~r:2. ~d:4. in
  let res = Yds.schedule [ j ] in
  check_float "speed = density" 3. (Yds.speed_of res 0);
  Alcotest.(check int) "one group" 1 (List.length res.Yds.groups)

let test_yds_example1_instance () =
  (* The SS-SP instance derived from Example 1 of the paper: weights
     6*sqrt 2 and 8, spans [2,4] and [1,3].  The optimal schedule runs
     both jobs at speed (8 + 6 sqrt 2)/3 over the critical interval
     [1,4]. *)
  let s = (8. +. (6. *. sqrt 2.)) /. 3. in
  let jobs = [ job ~id:1 ~w:(6. *. sqrt 2.) ~r:2. ~d:4.; job ~id:2 ~w:8. ~r:1. ~d:3. ] in
  let res = Yds.schedule jobs in
  check_float "speed job 1" s (Yds.speed_of res 1);
  check_float "speed job 2" s (Yds.speed_of res 2);
  match res.Yds.groups with
  | [ g ] ->
    Alcotest.(check (pair (float 1e-9) (float 1e-9))) "critical interval" (1., 4.) g.Yds.window;
    check_float "intensity" s g.Yds.intensity
  | _ -> Alcotest.fail "expected a single critical group"

let test_yds_two_independent_jobs () =
  (* Disjoint spans: each job forms its own group at its own density. *)
  let jobs = [ job ~id:0 ~w:4. ~r:0. ~d:2.; job ~id:1 ~w:1. ~r:5. ~d:6. ] in
  let res = Yds.schedule jobs in
  check_float "first density" 2. (Yds.speed_of res 0);
  check_float "second density" 1. (Yds.speed_of res 1);
  Alcotest.(check int) "two groups" 2 (List.length res.Yds.groups)

let test_yds_nested_spans () =
  (* A tight job inside a lax one: the tight job forms the critical
     group; the lax one spreads over the remaining time. *)
  let jobs = [ job ~id:0 ~w:10. ~r:4. ~d:5.; job ~id:1 ~w:4. ~r:0. ~d:10. ] in
  let res = Yds.schedule jobs in
  check_float "tight job at 10" 10. (Yds.speed_of res 0);
  (* The lax job has 9 units of free time left ([0,4] and [5,10]). *)
  check_float "lax job spread" (4. /. 9.) (Yds.speed_of res 1)

let test_yds_intensities_non_increasing () =
  let jobs =
    [
      job ~id:0 ~w:10. ~r:4. ~d:5.;
      job ~id:1 ~w:4. ~r:0. ~d:10.;
      job ~id:2 ~w:2. ~r:1. ~d:3.;
      job ~id:3 ~w:6. ~r:6. ~d:9.;
    ]
  in
  let res = Yds.schedule jobs in
  let rec non_increasing = function
    | (a : Yds.group) :: b :: rest ->
      a.intensity >= b.intensity -. 1e-9 && non_increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing" true (non_increasing res.Yds.groups)

let test_yds_duplicate_ids () =
  Alcotest.check_raises "duplicate ids" (Invalid_argument "Yds.schedule: duplicate job ids")
    (fun () -> ignore (Yds.schedule [ job ~id:0 ~w:1. ~r:0. ~d:1.; job ~id:0 ~w:1. ~r:0. ~d:1. ]))

let test_yds_energy () =
  let jobs = [ job ~id:0 ~w:4. ~r:0. ~d:2. ] in
  let res = Yds.schedule jobs in
  (* speed 2, energy = w * mu * s^(alpha-1) = 4 * 1 * 2 = 8 for alpha 2 *)
  check_float "energy" 8. (Yds.energy ~mu:1. ~alpha:2. jobs res)

(* --- independent numeric reference (see Numeric_ref) ----------- *)

let numeric_reference ~alpha jobs = Numeric_ref.ssp_energy ~alpha jobs

let test_yds_matches_numeric_example1 () =
  let jobs = [ job ~id:1 ~w:(6. *. sqrt 2.) ~r:2. ~d:4.; job ~id:2 ~w:8. ~r:1. ~d:3. ] in
  let res = Yds.schedule jobs in
  let e_yds = Yds.energy ~mu:1. ~alpha:2. jobs res in
  let e_num = numeric_reference ~alpha:2. jobs in
  Alcotest.(check bool)
    (Printf.sprintf "yds %.6f vs numeric %.6f" e_yds e_num)
    true
    (Float.abs (e_yds -. e_num) /. e_yds < 0.01)

let prop_yds_matches_numeric =
  QCheck.Test.make ~name:"yds: equals independent convex optimum" ~count:12
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let rng = Dcn_util.Prng.create seed in
      let n = 2 + Dcn_util.Prng.int rng 2 in
      let jobs =
        List.init n (fun id ->
            let r = Dcn_util.Prng.uniform rng ~lo:0. ~hi:8. in
            let d = r +. 0.5 +. Dcn_util.Prng.uniform rng ~lo:0. ~hi:4. in
            let w = 0.5 +. Dcn_util.Prng.uniform rng ~lo:0. ~hi:9.5 in
            job ~id ~w ~r ~d)
      in
      let res = Yds.schedule jobs in
      let e_yds = Yds.energy ~mu:1. ~alpha:2. jobs res in
      let e_num = numeric_reference ~alpha:2. jobs in
      (* numeric result is feasible, hence an upper bound on the optimum;
         YDS claims optimality, so it must not exceed it, and the
         optimiser should come close. *)
      e_yds <= e_num +. (0.02 *. e_num) && e_yds >= e_num *. 0.9)

let prop_yds_beats_constant_speed =
  QCheck.Test.make ~name:"yds: no worse than the best constant speed" ~count:100
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let rng = Dcn_util.Prng.create seed in
      let n = 2 + Dcn_util.Prng.int rng 5 in
      let jobs =
        List.init n (fun id ->
            let r = Dcn_util.Prng.uniform rng ~lo:0. ~hi:10. in
            let d = r +. 0.5 +. Dcn_util.Prng.uniform rng ~lo:0. ~hi:5. in
            job ~id ~w:(0.5 +. Dcn_util.Prng.uniform rng ~lo:0. ~hi:9.5) ~r ~d)
      in
      let res = Yds.schedule jobs in
      let alpha = 3. in
      let e_yds = Yds.energy ~mu:1. ~alpha jobs res in
      (* Constant speed = the first (maximal) intensity is feasible; its
         energy upper-bounds the optimum. *)
      let s_const = Yds.max_speed res in
      let e_const =
        List.fold_left
          (fun acc (j : Job.t) -> acc +. (j.weight *. (s_const ** (alpha -. 1.))))
          0. jobs
      in
      e_yds <= e_const +. 1e-6)

let prop_yds_slots_feasible =
  QCheck.Test.make ~name:"yds: execution slots complete every job in its span" ~count:100
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let rng = Dcn_util.Prng.create seed in
      let n = 1 + Dcn_util.Prng.int rng 7 in
      let jobs =
        List.init n (fun id ->
            let r = Dcn_util.Prng.uniform rng ~lo:0. ~hi:10. in
            let d = r +. 0.5 +. Dcn_util.Prng.uniform rng ~lo:0. ~hi:5. in
            job ~id ~w:(0.5 +. Dcn_util.Prng.uniform rng ~lo:0. ~hi:9.5) ~r ~d)
      in
      let res = Yds.schedule jobs in
      let sorted =
        List.sort (fun (a : Edf.slot) b -> compare a.start b.start) res.Yds.slots
      in
      let rec disjoint = function
        | (a : Edf.slot) :: (b : Edf.slot) :: rest ->
          a.stop <= b.start +. 1e-6 && disjoint (b :: rest)
        | _ -> true
      in
      disjoint sorted
      && List.for_all
           (fun (j : Job.t) ->
             let s = Yds.speed_of res j.id in
             let run =
               List.fold_left
                 (fun acc (a, b) -> acc +. (b -. a))
                 0.
                 (Edf.slots_of_task res.Yds.slots j.id)
             in
             Float.abs (run -. (j.weight /. s)) < 1e-6
             && List.for_all
                  (fun (a, b) -> a >= j.release -. 1e-9 && b <= j.deadline +. 1e-9)
                  (Edf.slots_of_task res.Yds.slots j.id))
           jobs)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "speed_scaling/edf",
      [
        Alcotest.test_case "single task" `Quick test_edf_single;
        Alcotest.test_case "priority order" `Quick test_edf_priority_order;
        Alcotest.test_case "preemption" `Quick test_edf_preemption;
        Alcotest.test_case "respects free slots" `Quick test_edf_respects_free_slots;
        Alcotest.test_case "infeasible" `Quick test_edf_infeasible;
        Alcotest.test_case "infeasible in gap" `Quick test_edf_infeasible_gap;
        Alcotest.test_case "zero duration" `Quick test_edf_zero_duration;
        Alcotest.test_case "feasible helper" `Quick test_edf_feasible_helper;
        qt prop_edf_conservation;
      ] );
    ( "speed_scaling/yds",
      [
        Alcotest.test_case "single job" `Quick test_yds_single_job;
        Alcotest.test_case "Example 1 instance" `Quick test_yds_example1_instance;
        Alcotest.test_case "independent jobs" `Quick test_yds_two_independent_jobs;
        Alcotest.test_case "nested spans" `Quick test_yds_nested_spans;
        Alcotest.test_case "intensities non-increasing" `Quick
          test_yds_intensities_non_increasing;
        Alcotest.test_case "duplicate ids" `Quick test_yds_duplicate_ids;
        Alcotest.test_case "energy formula" `Quick test_yds_energy;
        Alcotest.test_case "matches numeric (Example 1)" `Quick
          test_yds_matches_numeric_example1;
        qt prop_yds_matches_numeric;
        qt prop_yds_beats_constant_speed;
        qt prop_yds_slots_feasible;
      ] );
  ]
