test/test_sim.ml: Alcotest Dcn_core Dcn_flow Dcn_mcf Dcn_power Dcn_sched Dcn_sim Dcn_topology Dcn_util List QCheck QCheck_alcotest
