test/test_speed_scaling.ml: Alcotest Dcn_speed_scaling Dcn_util Edf Float Job List Numeric_ref Printf QCheck QCheck_alcotest Yds
