test/test_power.ml: Alcotest Dcn_power Discrete List Model Printf QCheck QCheck_alcotest
