test/test_more2.ml: Alcotest Dcn_core Dcn_flow Dcn_power Dcn_sched Dcn_speed_scaling Dcn_topology Dcn_util Edf Float Format Job List Numeric_ref Option Printf String Yds
