test/test_mcf.ml: Alcotest Array Commodity Dcn_mcf Dcn_power Dcn_topology Dcn_util Decompose Float Frank_wolfe List Printf QCheck QCheck_alcotest
