test/main.mli:
