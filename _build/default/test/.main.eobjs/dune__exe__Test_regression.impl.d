test/test_regression.ml: Alcotest Array Baselines Dcn_core Dcn_experiments Dcn_flow Dcn_power Dcn_topology Dcn_util Float Gadgets Instance Most_critical_first Printf Random_schedule
