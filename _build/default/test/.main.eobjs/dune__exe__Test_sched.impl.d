test/test_sched.ml: Alcotest Array Dcn_flow Dcn_power Dcn_sched Dcn_topology Float Gantt List Profile QCheck QCheck_alcotest Quantize Schedule String
