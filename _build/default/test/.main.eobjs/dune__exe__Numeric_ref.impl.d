test/numeric_ref.ml: Array Dcn_core Dcn_flow Dcn_speed_scaling Float Hashtbl List
