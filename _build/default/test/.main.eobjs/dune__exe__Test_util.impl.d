test/test_util.ml: Alcotest Approx Array Dcn_util Float Interval_set List Pqueue Prng QCheck QCheck_alcotest Stats String Table
