test/test_more.ml: Alcotest Array Dcn_core Dcn_experiments Dcn_flow Dcn_mcf Dcn_power Dcn_sched Dcn_sim Dcn_topology Dcn_util Format List Option String
