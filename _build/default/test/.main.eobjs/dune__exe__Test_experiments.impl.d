test/test_experiments.ml: Alcotest Dcn_experiments List String
