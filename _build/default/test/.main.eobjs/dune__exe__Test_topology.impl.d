test/test_topology.ml: Alcotest Array Builders Dcn_topology Graph List Paths QCheck QCheck_alcotest
