test/test_flow.ml: Alcotest Array Dcn_flow Dcn_topology Dcn_util Float Flow List QCheck QCheck_alcotest Split Timeline Workload
