(* Tests for Dcn_flow: flow records, the paper's workload generators and
   the interval timeline of Algorithm 2. *)

open Dcn_flow
module Builders = Dcn_topology.Builders

let check_float = Alcotest.(check (float 1e-9))

let mk ?(id = 0) ?(src = 0) ?(dst = 1) ?(volume = 6.) ?(release = 2.) ?(deadline = 4.) ()
    =
  Flow.make ~id ~src ~dst ~volume ~release ~deadline

let test_flow_fields () =
  let f = mk () in
  check_float "density" 3. (Flow.density f);
  check_float "span length" 2. (Flow.span_length f);
  Alcotest.(check (pair (float 0.) (float 0.))) "span" (2., 4.) (Flow.span f);
  Alcotest.(check bool) "active inside" true (Flow.active_at f 3.);
  Alcotest.(check bool) "active boundary" true (Flow.active_at f 4.);
  Alcotest.(check bool) "inactive" false (Flow.active_at f 4.5)

let test_flow_invalid () =
  let invalid f = Alcotest.(check bool) "invalid" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  invalid (fun () -> mk ~volume:0. ());
  invalid (fun () -> mk ~release:4. ~deadline:4. ());
  invalid (fun () -> mk ~src:1 ~dst:1 ())

let test_flow_aggregates () =
  let fs = [ mk ~id:0 (); mk ~id:1 ~release:0. ~deadline:10. ~volume:5. () ] in
  Alcotest.(check (pair (float 0.) (float 0.))) "horizon" (0., 10.) (Flow.horizon fs);
  check_float "total volume" 11. (Flow.total_volume fs);
  check_float "max density" 3. (Flow.max_density fs)

let test_spans_interval () =
  let f = mk () in
  Alcotest.(check bool) "inside" true (Flow.spans_interval f ~lo:2.5 ~hi:3.5);
  Alcotest.(check bool) "exact" true (Flow.spans_interval f ~lo:2. ~hi:4.);
  Alcotest.(check bool) "outside" false (Flow.spans_interval f ~lo:1. ~hi:3.)

(* Workloads *)

let test_paper_random () =
  let graph = Builders.fat_tree 4 in
  let rng = Dcn_util.Prng.create 42 in
  let flows = Workload.paper_random ~rng ~graph ~n:50 () in
  Alcotest.(check int) "count" 50 (List.length flows);
  List.iter
    (fun (f : Flow.t) ->
      Alcotest.(check bool) "volume > 0" true (f.volume > 0.);
      Alcotest.(check bool) "span >= min_span" true (Flow.span_length f >= 1.);
      Alcotest.(check bool) "in horizon" true (f.release >= 1. && f.deadline <= 100.);
      Alcotest.(check bool) "host endpoints" true
        (Dcn_topology.Graph.is_host graph f.src && Dcn_topology.Graph.is_host graph f.dst))
    flows;
  (* Same seed -> same workload. *)
  let rng' = Dcn_util.Prng.create 42 in
  let flows' = Workload.paper_random ~rng:rng' ~graph ~n:50 () in
  Alcotest.(check bool) "deterministic" true (flows = flows')

let test_paper_random_volume_distribution () =
  let graph = Builders.fat_tree 4 in
  let rng = Dcn_util.Prng.create 7 in
  let flows = Workload.paper_random ~rng ~graph ~n:3000 () in
  let vols = Array.of_list (List.map (fun (f : Flow.t) -> f.volume) flows) in
  let m = Dcn_util.Stats.mean vols in
  Alcotest.(check bool) "mean near 10" true (Float.abs (m -. 10.) < 0.3)

let test_all_to_all () =
  let graph = Builders.star ~leaves:4 in
  let flows = Workload.all_to_all ~graph () in
  Alcotest.(check int) "n(n-1) flows" 12 (List.length flows)

let test_incast () =
  let graph = Builders.fat_tree 4 in
  let rng = Dcn_util.Prng.create 3 in
  let flows = Workload.incast ~rng ~graph ~sources:8 () in
  Alcotest.(check int) "count" 8 (List.length flows);
  let sinks = List.sort_uniq compare (List.map (fun (f : Flow.t) -> f.dst) flows) in
  Alcotest.(check int) "single sink" 1 (List.length sinks);
  let srcs = List.sort_uniq compare (List.map (fun (f : Flow.t) -> f.src) flows) in
  Alcotest.(check int) "distinct sources" 8 (List.length srcs);
  Alcotest.(check bool) "sink not a source" true
    (not (List.mem (List.hd sinks) srcs))

let test_shuffle () =
  let graph = Builders.fat_tree 4 in
  let rng = Dcn_util.Prng.create 5 in
  let flows = Workload.shuffle ~rng ~graph ~mappers:3 ~reducers:4 () in
  Alcotest.(check int) "m*r flows" 12 (List.length flows)

let test_stride () =
  let graph = Builders.star ~leaves:6 in
  let flows = Workload.stride ~graph ~stride:2 () in
  Alcotest.(check int) "one per host" 6 (List.length flows);
  List.iter
    (fun (f : Flow.t) -> Alcotest.(check bool) "no self flow" true (f.src <> f.dst))
    flows

let test_trace_basics () =
  let graph = Builders.fat_tree 4 in
  let rng = Dcn_util.Prng.create 13 in
  let flows = Workload.trace ~rng ~graph ~horizon:(0., 200.) () in
  Alcotest.(check bool) "non-empty" true (List.length flows > 10);
  List.iter
    (fun (f : Flow.t) ->
      Alcotest.(check bool) "within horizon" true (f.release >= 0. && f.deadline <= 200.);
      Alcotest.(check bool) "span floor" true (Flow.span_length f >= 0.5);
      Alcotest.(check bool) "volume positive" true (f.volume > 0.))
    flows;
  (* Arrivals are in increasing release order. *)
  let rec increasing = function
    | (a : Flow.t) :: (b : Flow.t) :: rest -> a.release <= b.release && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "poisson arrivals ordered" true (increasing flows)

let test_trace_load_scales () =
  let graph = Builders.fat_tree 4 in
  let count load =
    let rng = Dcn_util.Prng.create 17 in
    List.length (Workload.trace ~load ~rng ~graph ~horizon:(0., 100.) ())
  in
  Alcotest.(check bool) "heavier load, more flows" true (count 4. > count 0.5)

let test_trace_heavy_tail () =
  (* Pareto 1.5 produces elephants: max volume should dwarf the median. *)
  let graph = Builders.fat_tree 4 in
  let rng = Dcn_util.Prng.create 23 in
  let flows = Workload.trace ~load:4. ~rng ~graph ~horizon:(0., 500.) () in
  let vols = Array.of_list (List.map (fun (f : Flow.t) -> f.volume) flows) in
  Alcotest.(check bool) "tail heavy" true
    (Dcn_util.Stats.maximum vols > 5. *. Dcn_util.Stats.median vols)

let test_trace_diurnal () =
  let graph = Builders.fat_tree 4 in
  let flows amp =
    let rng = Dcn_util.Prng.create 29 in
    Workload.trace ~load:4. ~diurnal:amp ~rng ~graph ~horizon:(0., 200.) ()
  in
  (* Full-amplitude modulation thins arrivals overall and concentrates
     them in the first half-period (where sin > 0). *)
  let plain = flows 0. and modulated = flows 1. in
  Alcotest.(check bool) "thinned" true (List.length modulated < List.length plain);
  let first_half fs =
    List.length (List.filter (fun (f : Flow.t) -> f.release < 100.) fs)
  in
  let frac = float_of_int (first_half modulated) /. float_of_int (List.length modulated) in
  Alcotest.(check bool) "day side heavier" true (frac > 0.6);
  Alcotest.(check bool) "amplitude validated" true
    (try ignore (flows 1.5); false with Invalid_argument _ -> true)

let test_staged () =
  let graph = Builders.star ~leaves:4 in
  let rng = Dcn_util.Prng.create 11 in
  let flows = Workload.staged ~rng ~graph ~stages:3 ~flows_per_stage:5 ~stage_length:2. () in
  Alcotest.(check int) "count" 15 (List.length flows);
  Alcotest.(check (pair (float 0.) (float 0.)))
    "horizon" (0., 6.) (Flow.horizon flows)

(* Split *)

let test_split_conserves_volume () =
  let f = mk ~volume:10. () in
  let parts = Split.flow f ~parts:3 ~first_id:100 in
  Alcotest.(check int) "three parts" 3 (List.length parts);
  check_float "volume conserved" 10. (Flow.total_volume parts);
  List.iteri
    (fun j (p : Flow.t) ->
      Alcotest.(check int) "id" (100 + j) p.id;
      Alcotest.(check (pair (float 0.) (float 0.))) "same span" (Flow.span f) (Flow.span p);
      Alcotest.(check int) "same src" f.src p.src;
      Alcotest.(check int) "same dst" f.dst p.dst)
    parts

let test_split_single_part_identity () =
  let f = mk ~volume:7. () in
  match Split.flow f ~parts:1 ~first_id:0 with
  | [ p ] -> check_float "same volume" 7. p.volume
  | _ -> Alcotest.fail "expected one part"

let test_split_workload_and_mapping () =
  let flows = [ mk ~id:5 ~volume:4. (); mk ~id:9 ~volume:6. () ] in
  let split = Split.workload flows ~parts:2 in
  Alcotest.(check int) "four sub-flows" 4 (List.length split);
  check_float "total volume" 10. (Flow.total_volume split);
  Alcotest.(check (list (pair int int)))
    "mapping" [ (0, 5); (1, 5); (2, 9); (3, 9) ]
    (Split.mapping flows ~parts:2)

let test_split_invalid () =
  Alcotest.(check bool) "raises" true
    (try ignore (Split.flow (mk ()) ~parts:0 ~first_id:0); false
     with Invalid_argument _ -> true)

(* Timeline *)

let test_timeline_basic () =
  (* Example 1's flows: spans [2,4] and [1,3]. *)
  let f1 = mk ~id:1 ~release:2. ~deadline:4. () in
  let f2 = mk ~id:2 ~release:1. ~deadline:3. () in
  let tl = Timeline.make [ f1; f2 ] in
  Alcotest.(check (array (float 0.))) "breakpoints" [| 1.; 2.; 3.; 4. |]
    (Timeline.breakpoints tl);
  Alcotest.(check int) "K" 3 (Timeline.num_intervals tl);
  Alcotest.(check (pair (float 0.) (float 0.))) "I_2" (2., 3.) (Timeline.bounds tl 1);
  check_float "length" 1. (Timeline.length tl 1);
  Alcotest.(check (pair (float 0.) (float 0.))) "horizon" (1., 4.) (Timeline.horizon tl);
  check_float "beta" (1. /. 3.) (Timeline.beta tl 0);
  check_float "lambda" 3. (Timeline.lambda tl)

let test_timeline_active () =
  let f1 = mk ~id:1 ~release:2. ~deadline:4. () in
  let f2 = mk ~id:2 ~release:1. ~deadline:3. () in
  let tl = Timeline.make [ f1; f2 ] in
  let ids k = List.map (fun (f : Flow.t) -> f.id) (Timeline.active tl [ f1; f2 ] k) in
  Alcotest.(check (list int)) "I1 only f2" [ 2 ] (ids 0);
  Alcotest.(check (list int)) "I2 both" [ 1; 2 ] (ids 1);
  Alcotest.(check (list int)) "I3 only f1" [ 1 ] (ids 2)

let test_timeline_indices_of () =
  let f1 = mk ~id:1 ~release:2. ~deadline:4. () in
  let f2 = mk ~id:2 ~release:1. ~deadline:3. () in
  let tl = Timeline.make [ f1; f2 ] in
  Alcotest.(check (list int)) "f1 intervals" [ 1; 2 ] (Timeline.interval_indices_of tl f1);
  Alcotest.(check (list int)) "f2 intervals" [ 0; 1 ] (Timeline.interval_indices_of tl f2)

let test_timeline_index_at () =
  let f1 = mk ~id:1 ~release:2. ~deadline:4. () in
  let f2 = mk ~id:2 ~release:1. ~deadline:3. () in
  let tl = Timeline.make [ f1; f2 ] in
  Alcotest.(check (option int)) "interior" (Some 1) (Timeline.index_at tl 2.5);
  Alcotest.(check (option int)) "boundary to earlier" (Some 0) (Timeline.index_at tl 2.);
  Alcotest.(check (option int)) "start" (Some 0) (Timeline.index_at tl 1.);
  Alcotest.(check (option int)) "outside" None (Timeline.index_at tl 0.5)

(* Property: intervals of a flow tile its span exactly. *)
let prop_timeline_tiling =
  QCheck.Test.make ~name:"timeline: flow intervals tile its span" ~count:200
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let graph = Builders.star ~leaves:4 in
      let rng = Dcn_util.Prng.create seed in
      let flows = Workload.paper_random ~rng ~graph ~n:8 () in
      let tl = Timeline.make flows in
      List.for_all
        (fun f ->
          let ks = Timeline.interval_indices_of tl f in
          let total = List.fold_left (fun acc k -> acc +. Timeline.length tl k) 0. ks in
          Float.abs (total -. Flow.span_length f) < 1e-6)
        flows)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "flow/flow",
      [
        Alcotest.test_case "fields" `Quick test_flow_fields;
        Alcotest.test_case "invalid" `Quick test_flow_invalid;
        Alcotest.test_case "aggregates" `Quick test_flow_aggregates;
        Alcotest.test_case "spans_interval" `Quick test_spans_interval;
      ] );
    ( "flow/workload",
      [
        Alcotest.test_case "paper random" `Quick test_paper_random;
        Alcotest.test_case "volume distribution" `Quick test_paper_random_volume_distribution;
        Alcotest.test_case "all-to-all" `Quick test_all_to_all;
        Alcotest.test_case "incast" `Quick test_incast;
        Alcotest.test_case "shuffle" `Quick test_shuffle;
        Alcotest.test_case "stride" `Quick test_stride;
        Alcotest.test_case "staged" `Quick test_staged;
        Alcotest.test_case "trace basics" `Quick test_trace_basics;
        Alcotest.test_case "trace load scales" `Quick test_trace_load_scales;
        Alcotest.test_case "trace heavy tail" `Quick test_trace_heavy_tail;
        Alcotest.test_case "trace diurnal" `Quick test_trace_diurnal;
      ] );
    ( "flow/split",
      [
        Alcotest.test_case "conserves volume" `Quick test_split_conserves_volume;
        Alcotest.test_case "single part" `Quick test_split_single_part_identity;
        Alcotest.test_case "workload + mapping" `Quick test_split_workload_and_mapping;
        Alcotest.test_case "invalid" `Quick test_split_invalid;
      ] );
    ( "flow/timeline",
      [
        Alcotest.test_case "breakpoints" `Quick test_timeline_basic;
        Alcotest.test_case "active flows" `Quick test_timeline_active;
        Alcotest.test_case "indices of flow" `Quick test_timeline_indices_of;
        Alcotest.test_case "index_at" `Quick test_timeline_index_at;
        qt prop_timeline_tiling;
      ] );
  ]
