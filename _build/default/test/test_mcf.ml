(* Tests for Dcn_mcf: the Frank-Wolfe convex MCF solver is checked
   against closed-form optima on parallel-link and line networks, its
   own duality gap, and flow-conservation invariants; the
   Raghavan-Tompson decomposition must recompose to the fractional
   solution. *)

open Dcn_mcf
module Graph = Dcn_topology.Graph
module Builders = Dcn_topology.Builders

let quad = ((fun x -> x *. x), fun x -> 2. *. x)

let problem ?(capacity = infinity) ?(cost = quad) graph commodities =
  let c, c' = cost in
  { Frank_wolfe.graph; commodities = Array.of_list commodities; cost = c;
    cost_deriv = c'; capacity }

let commodity ~index ~src ~dst ~demand = Commodity.make ~index ~src ~dst ~demand

(* Net flow out of a node for one commodity. *)
let net_out g flow v =
  let out = Array.fold_left (fun acc l -> acc +. flow.(l)) 0. (Graph.out_links g v) in
  let inc = Array.fold_left (fun acc l -> acc +. flow.(l)) 0. (Graph.in_links g v) in
  out -. inc

let test_commodity_invalid () =
  let invalid f = Alcotest.(check bool) "invalid" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  invalid (fun () -> commodity ~index:0 ~src:0 ~dst:0 ~demand:1.);
  invalid (fun () -> commodity ~index:0 ~src:0 ~dst:1 ~demand:0.)

let test_fw_line_forced_route () =
  (* On a line there is a single route: cost = hops * cost(demand). *)
  let g = Builders.line 4 in
  let p = problem g [ commodity ~index:0 ~src:0 ~dst:3 ~demand:5. ] in
  let s = Frank_wolfe.solve p in
  Alcotest.(check (float 1e-6)) "cost = 3 * 25" 75. s.Frank_wolfe.cost;
  Alcotest.(check bool) "gap tiny" true (s.Frank_wolfe.gap < 1e-3)

let test_fw_parallel_even_split () =
  (* Quadratic cost on k parallel links: optimal split is even.
     demand 8 over 4 links -> 4 * (8/4)^2 = 16. *)
  let g = Builders.parallel ~links:4 in
  let p = problem g [ commodity ~index:0 ~src:0 ~dst:1 ~demand:8. ] in
  let s = Frank_wolfe.solve p in
  Alcotest.(check bool)
    (Printf.sprintf "cost %.4f close to 16" s.Frank_wolfe.cost)
    true
    (Float.abs (s.Frank_wolfe.cost -. 16.) /. 16. < 0.02);
  (* Each of the 4 forward links carries about 2. *)
  List.iter
    (fun l ->
      Alcotest.(check bool) "balanced" true
        (Float.abs (s.Frank_wolfe.loads.(l) -. 2.) < 0.15))
    (Graph.links_between g ~src:0 ~dst:1)

let test_fw_two_commodities_share () =
  (* Two opposite commodities on the same parallel pair use opposite
     directed links and do not interact. *)
  let g = Builders.parallel ~links:2 in
  let p =
    problem g
      [
        commodity ~index:0 ~src:0 ~dst:1 ~demand:4.;
        commodity ~index:1 ~src:1 ~dst:0 ~demand:2.;
      ]
  in
  let s = Frank_wolfe.solve p in
  (* 2*(4/2)^2 + 2*(2/2)^2 = 8 + 2 = 10 *)
  Alcotest.(check bool)
    (Printf.sprintf "cost %.4f close to 10" s.Frank_wolfe.cost)
    true
    (Float.abs (s.Frank_wolfe.cost -. 10.) /. 10. < 0.02)

let test_fw_lower_bound () =
  let g = Builders.parallel ~links:3 in
  let p = problem g [ commodity ~index:0 ~src:0 ~dst:1 ~demand:6. ] in
  let s = Frank_wolfe.solve p in
  let lb = Frank_wolfe.lower_bound_cost p s in
  (* true optimum is 3 * 4 = 12 *)
  Alcotest.(check bool) "lb below cost" true (lb <= s.Frank_wolfe.cost +. 1e-12);
  Alcotest.(check bool) "lb below optimum" true (lb <= 12. +. 1e-9);
  Alcotest.(check bool) "lb close to optimum" true (lb > 11.5)

let test_fw_capacity_overload_reported () =
  (* One link, demand above capacity: the penalty cannot reroute, so the
     overload must be reported. *)
  let g = Builders.parallel ~links:1 in
  let p = problem ~capacity:1. g [ commodity ~index:0 ~src:0 ~dst:1 ~demand:1.5 ] in
  let s = Frank_wolfe.solve p in
  Alcotest.(check bool) "overload about 0.5" true
    (Float.abs (s.Frank_wolfe.max_overload -. 0.5) < 1e-6)

let test_fw_capacity_respected_when_possible () =
  (* Three links with capacity 3 and demand 6: even split respects. *)
  let g = Builders.parallel ~links:3 in
  let p = problem ~capacity:3. g [ commodity ~index:0 ~src:0 ~dst:1 ~demand:6. ] in
  let s = Frank_wolfe.solve p in
  Alcotest.(check bool) "within capacity (tolerance)" true
    (s.Frank_wolfe.max_overload < 0.05)

let test_fw_quartic_even_split () =
  (* x^4 on 4 parallel links, demand 8: optimum 4 * 2^4 = 64. *)
  let g = Builders.parallel ~links:4 in
  let quartic = ((fun x -> x ** 4.), fun x -> 4. *. (x ** 3.)) in
  let p = problem ~cost:quartic g [ commodity ~index:0 ~src:0 ~dst:1 ~demand:8. ] in
  let s = Frank_wolfe.solve p in
  Alcotest.(check bool)
    (Printf.sprintf "cost %.3f close to 64" s.Frank_wolfe.cost)
    true
    (Float.abs (s.Frank_wolfe.cost -. 64.) /. 64. < 0.03)

let test_fw_envelope_cost () =
  (* The fixed-charge envelope: sigma = 4, mu = 1, alpha = 2 gives
     r_opt = 2 and a linear segment of slope 4 below it.  A demand of 2
     on 2 parallel links costs 8 however it is split (the envelope is
     linear there), so Frank-Wolfe must find cost ~8. *)
  let model = Dcn_power.Model.make ~sigma:4. ~mu:1. ~alpha:2. () in
  let g = Builders.parallel ~links:2 in
  let p =
    problem
      ~cost:(Dcn_power.Model.envelope model, Dcn_power.Model.envelope_deriv model)
      g
      [ commodity ~index:0 ~src:0 ~dst:1 ~demand:2. ]
  in
  let s = Frank_wolfe.solve p in
  Alcotest.(check bool)
    (Printf.sprintf "cost %.4f close to 8" s.Frank_wolfe.cost)
    true
    (Float.abs (s.Frank_wolfe.cost -. 8.) < 0.05)

let test_fw_empty_commodities () =
  let g = Builders.line 2 in
  Alcotest.(check bool) "raises" true
    (try ignore (Frank_wolfe.solve (problem g [])); false
     with Invalid_argument _ -> true)

let test_fw_fat_tree_host_links_forced () =
  (* In a fat-tree every host has one uplink: the commodity's full
     demand must appear there no matter how the core splits. *)
  let g = Builders.fat_tree 4 in
  let p = problem g [ commodity ~index:0 ~src:0 ~dst:15 ~demand:3. ] in
  let s = Frank_wolfe.solve p in
  let up = (Graph.out_links g 0).(0) in
  Alcotest.(check (float 1e-6)) "host uplink carries demand" 3. s.Frank_wolfe.loads.(up);
  Alcotest.(check bool) "converged" true
    (s.Frank_wolfe.gap < 1e-3 *. Float.max 1. s.Frank_wolfe.cost)

let test_fw_fat_tree_beats_single_path () =
  (* With quadratic cost, splitting across the 4 disjoint cross-pod
     routes beats any single path: single-path cost = 6 * d^2; the
     4 middle hops can be split 4 ways. *)
  let g = Builders.fat_tree 4 in
  let d = 4. in
  let p = problem g [ commodity ~index:0 ~src:0 ~dst:15 ~demand:d ] in
  let s = Frank_wolfe.solve p in
  Alcotest.(check bool)
    (Printf.sprintf "cost %.3f < single-path %.3f" s.Frank_wolfe.cost (6. *. d *. d))
    true
    (s.Frank_wolfe.cost < 6. *. d *. d)

(* --- decomposition ------------------------------------------------ *)

let test_decompose_single_path () =
  let g = Builders.line 3 in
  let p = problem g [ commodity ~index:0 ~src:0 ~dst:2 ~demand:2. ] in
  let s = Frank_wolfe.solve p in
  let paths = Decompose.run g ~src:0 ~dst:2 ~flow:s.Frank_wolfe.flows.(0) in
  Alcotest.(check int) "one path" 1 (List.length paths);
  Alcotest.(check (float 1e-6)) "full weight" 2. (Decompose.total_weight paths)

let test_decompose_parallel_split () =
  let g = Builders.parallel ~links:4 in
  let p = problem g [ commodity ~index:0 ~src:0 ~dst:1 ~demand:8. ] in
  let s = Frank_wolfe.solve p in
  let paths = Decompose.run g ~src:0 ~dst:1 ~flow:s.Frank_wolfe.flows.(0) in
  Alcotest.(check bool) "several paths" true (List.length paths >= 2);
  Alcotest.(check bool) "weights sum to demand" true
    (Float.abs (Decompose.total_weight paths -. 8.) < 1e-6);
  List.iter
    (fun (wp : Decompose.weighted_path) ->
      Alcotest.(check bool) "valid path" true (Graph.is_path g ~src:0 ~dst:1 wp.links))
    paths

let test_decompose_cycle_cancelling () =
  (* Hand-build a flow with a spurious cycle on a 4-node line plus the
     path: the cycle must disappear, the path must survive. *)
  let g = Builders.line 4 in
  let flow = Array.make (Graph.num_links g) 0. in
  let set u v x =
    match Graph.find_link g ~src:u ~dst:v with
    | Some l -> flow.(l) <- flow.(l) +. x
    | None -> Alcotest.fail "missing link"
  in
  set 0 1 1.;
  set 1 2 1.;
  set 2 3 1.;
  (* cycle 1 -> 2 -> 1 *)
  set 1 2 0.5;
  set 2 1 0.5;
  let paths = Decompose.run g ~src:0 ~dst:3 ~flow in
  Alcotest.(check (float 1e-9)) "path weight 1" 1. (Decompose.total_weight paths);
  List.iter
    (fun (wp : Decompose.weighted_path) ->
      Alcotest.(check int) "simple 3-hop path" 3 (List.length wp.links))
    paths

let test_decompose_dead_end_noise () =
  (* A dangling branch that conserves nothing is dropped silently. *)
  let g = Builders.star ~leaves:3 in
  let flow = Array.make (Graph.num_links g) 0. in
  let set u v x =
    match Graph.find_link g ~src:u ~dst:v with
    | Some l -> flow.(l) <- flow.(l) +. x
    | None -> Alcotest.fail "missing link"
  in
  (* hub is node 3; route 0 -> 3 -> 1 plus noise 0 -> 3 -> 2 (dead end
     at host 2 which is not the destination). *)
  set 0 3 1.1;
  set 3 1 1.;
  set 3 2 0.1;
  let paths = Decompose.run g ~src:0 ~dst:1 ~flow in
  Alcotest.(check bool) "recovers the real path" true
    (Float.abs (Decompose.total_weight paths -. 1.) < 0.2)

let test_decompose_empty () =
  let g = Builders.line 3 in
  let flow = Array.make (Graph.num_links g) 0. in
  Alcotest.(check int) "no flow, no paths" 0
    (List.length (Decompose.run g ~src:0 ~dst:2 ~flow))

(* --- properties --------------------------------------------------- *)

let random_problem seed =
  let rng = Dcn_util.Prng.create seed in
  let g = Builders.random_fabric ~switches:6 ~degree:3 ~hosts:8 ~seed in
  let hosts = Graph.hosts g in
  let nc = 1 + Dcn_util.Prng.int rng 5 in
  let commodities =
    List.init nc (fun index ->
        let src = Dcn_util.Prng.pick rng hosts in
        let rec dst () =
          let d = Dcn_util.Prng.pick rng hosts in
          if d = src then dst () else d
        in
        commodity ~index ~src ~dst:(dst ()) ~demand:(0.5 +. Dcn_util.Prng.float rng 5.))
  in
  (g, commodities)

let prop_fw_conservation =
  QCheck.Test.make ~name:"frank-wolfe: flows conserve at every node" ~count:40
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let g, commodities = random_problem seed in
      let s = Frank_wolfe.solve (problem g commodities) in
      List.for_all
        (fun (c : Commodity.t) ->
          let flow = s.Frank_wolfe.flows.(c.index) in
          let ok = ref true in
          for v = 0 to Graph.num_nodes g - 1 do
            let expected =
              if v = c.src then c.demand else if v = c.dst then -.c.demand else 0.
            in
            if Float.abs (net_out g flow v -. expected) > 1e-6 then ok := false
          done;
          !ok)
        commodities)

let prop_fw_gap_bounds_optimum =
  QCheck.Test.make ~name:"frank-wolfe: duality lower bound below cost" ~count:40
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let g, commodities = random_problem seed in
      let p = problem g commodities in
      let s = Frank_wolfe.solve p in
      Frank_wolfe.lower_bound_cost p s <= s.Frank_wolfe.cost +. 1e-9)

let prop_decompose_recomposes =
  QCheck.Test.make ~name:"decompose: paths recompose the link flows" ~count:40
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 100000 st))
    (fun seed ->
      let g, commodities = random_problem seed in
      let s = Frank_wolfe.solve (problem g commodities) in
      List.for_all
        (fun (c : Commodity.t) ->
          let flow = s.Frank_wolfe.flows.(c.index) in
          let paths = Decompose.run g ~src:c.src ~dst:c.dst ~flow in
          let rebuilt = Array.make (Graph.num_links g) 0. in
          List.iter
            (fun (wp : Decompose.weighted_path) ->
              List.iter (fun l -> rebuilt.(l) <- rebuilt.(l) +. wp.weight) wp.links)
            paths;
          let ok = ref true in
          (* Decomposition may cancel opposite-direction pairs (cycles in
             the union of iterates), so the rebuilt flow is a lower
             envelope of the fractional one, never an excess. *)
          Array.iteri
            (fun l x -> if x > flow.(l) +. 1e-5 then ok := false)
            rebuilt;
          !ok
          && Float.abs (Decompose.total_weight paths -. c.demand) < 1e-5
          && List.for_all
               (fun (wp : Decompose.weighted_path) ->
                 Graph.is_path g ~src:c.src ~dst:c.dst wp.links && wp.weight > 0.)
               paths)
        commodities)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "mcf/frank_wolfe",
      [
        Alcotest.test_case "commodity invalid" `Quick test_commodity_invalid;
        Alcotest.test_case "line forced route" `Quick test_fw_line_forced_route;
        Alcotest.test_case "parallel even split" `Quick test_fw_parallel_even_split;
        Alcotest.test_case "two commodities" `Quick test_fw_two_commodities_share;
        Alcotest.test_case "duality lower bound" `Quick test_fw_lower_bound;
        Alcotest.test_case "capacity overload reported" `Quick
          test_fw_capacity_overload_reported;
        Alcotest.test_case "capacity respected" `Quick test_fw_capacity_respected_when_possible;
        Alcotest.test_case "quartic even split" `Quick test_fw_quartic_even_split;
        Alcotest.test_case "envelope cost" `Quick test_fw_envelope_cost;
        Alcotest.test_case "empty commodities" `Quick test_fw_empty_commodities;
        Alcotest.test_case "fat-tree host links forced" `Quick
          test_fw_fat_tree_host_links_forced;
        Alcotest.test_case "fat-tree beats single path" `Quick
          test_fw_fat_tree_beats_single_path;
        qt prop_fw_conservation;
        qt prop_fw_gap_bounds_optimum;
      ] );
    ( "mcf/decompose",
      [
        Alcotest.test_case "single path" `Quick test_decompose_single_path;
        Alcotest.test_case "parallel split" `Quick test_decompose_parallel_split;
        Alcotest.test_case "cycle cancelling" `Quick test_decompose_cycle_cancelling;
        Alcotest.test_case "dead-end noise" `Quick test_decompose_dead_end_noise;
        Alcotest.test_case "empty flow" `Quick test_decompose_empty;
        qt prop_decompose_recomposes;
      ] );
  ]
