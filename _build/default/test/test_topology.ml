(* Tests for Dcn_topology: graph construction invariants, topology
   builders (structural properties of fat-tree, BCube, ...), and path
   algorithms (Dijkstra vs. BFS hop counts, Yen, enumeration). *)

open Dcn_topology

let test_builder_basic () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_node b Graph.Host in
  let c = Graph.Builder.add_node b (Graph.Switch { tier = 1 }) in
  let fwd, bwd = Graph.Builder.add_cable b a c in
  let g = Graph.Builder.finish b in
  Alcotest.(check int) "nodes" 2 (Graph.num_nodes g);
  Alcotest.(check int) "links" 2 (Graph.num_links g);
  Alcotest.(check int) "cables" 1 (Graph.num_cables g);
  Alcotest.(check int) "fwd src" a (Graph.link_src g fwd);
  Alcotest.(check int) "fwd dst" c (Graph.link_dst g fwd);
  Alcotest.(check int) "reverse pairs" bwd (Graph.reverse g fwd);
  Alcotest.(check int) "reverse involution" fwd (Graph.reverse g bwd);
  Alcotest.(check bool) "host kind" true (Graph.is_host g a);
  Alcotest.(check bool) "switch kind" false (Graph.is_host g c)

let test_builder_self_loop () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_node b Graph.Host in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.Builder.add_cable: self-loop")
    (fun () -> ignore (Graph.Builder.add_cable b a a))

let test_builder_reuse () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_node b Graph.Host);
  ignore (Graph.Builder.finish b);
  Alcotest.check_raises "reuse" (Invalid_argument "Graph.Builder: reuse after finish")
    (fun () -> ignore (Graph.Builder.add_node b Graph.Host))

let test_multigraph () =
  let g = Builders.parallel ~links:4 in
  Alcotest.(check int) "nodes" 2 (Graph.num_nodes g);
  Alcotest.(check int) "cables" 4 (Graph.num_cables g);
  Alcotest.(check int) "parallel directed links" 4
    (List.length (Graph.links_between g ~src:0 ~dst:1))

let test_line () =
  let g = Builders.line 3 in
  Alcotest.(check int) "nodes" 3 (Graph.num_nodes g);
  Alcotest.(check int) "cables" 2 (Graph.num_cables g);
  Alcotest.(check bool) "connected" true (Graph.connected g);
  match Paths.shortest_path g ~src:0 ~dst:2 with
  | Some p -> Alcotest.(check int) "2 hops" 2 (List.length p)
  | None -> Alcotest.fail "no path on line"

let test_star () =
  let g = Builders.star ~leaves:5 in
  Alcotest.(check int) "nodes" 6 (Graph.num_nodes g);
  Alcotest.(check int) "hosts" 5 (Array.length (Graph.hosts g));
  Alcotest.(check int) "switches" 1 (Array.length (Graph.switches g));
  Alcotest.(check int) "hub degree" 5 (Graph.degree_out g 5)

let test_leaf_spine () =
  let g = Builders.leaf_spine ~spines:4 ~leaves:8 ~hosts_per_leaf:16 in
  Alcotest.(check int) "hosts" 128 (Array.length (Graph.hosts g));
  Alcotest.(check int) "switches" 12 (Array.length (Graph.switches g));
  Alcotest.(check int) "cables" ((8 * 16) + (8 * 4)) (Graph.num_cables g);
  Alcotest.(check bool) "connected" true (Graph.connected g);
  (* Any host-to-host path between different leaves takes 4 hops. *)
  match Paths.shortest_path g ~src:0 ~dst:127 with
  | Some p -> Alcotest.(check int) "4 hops across leaves" 4 (List.length p)
  | None -> Alcotest.fail "no path in leaf-spine"

let test_fat_tree_k4 () =
  let g = Builders.fat_tree 4 in
  Alcotest.(check int) "hosts" 16 (Array.length (Graph.hosts g));
  Alcotest.(check int) "switches" 20 (Array.length (Graph.switches g));
  (* k^3/4 host links + k * (k/2)^2 edge-agg + (k/2)^2 * k agg-core *)
  Alcotest.(check int) "cables" (16 + 16 + 16) (Graph.num_cables g);
  Alcotest.(check bool) "connected" true (Graph.connected g);
  (* Every switch in a k=4 fat-tree has degree 4 (edge: 2 hosts + 2 aggs;
     agg: 2 edges + 2 cores; core: one agg per pod). *)
  Array.iter
    (fun sw -> Alcotest.(check int) "switch degree" 4 (Graph.degree_out g sw))
    (Graph.switches g)

let test_fat_tree_k8_is_paper_network () =
  let g = Builders.fat_tree 8 in
  Alcotest.(check int) "80 switches" 80 (Array.length (Graph.switches g));
  Alcotest.(check int) "128 servers" 128 (Array.length (Graph.hosts g));
  Alcotest.(check bool) "connected" true (Graph.connected g)

let test_fat_tree_path_lengths () =
  let g = Builders.fat_tree 4 in
  (* Same edge switch: 2 hops; same pod different edge: 4; across pods: 6. *)
  let hops src dst =
    match Paths.shortest_path g ~src ~dst with
    | Some p -> List.length p
    | None -> Alcotest.fail "unreachable in fat-tree"
  in
  Alcotest.(check int) "same edge" 2 (hops 0 1);
  Alcotest.(check int) "same pod" 4 (hops 0 2);
  Alcotest.(check int) "cross pod" 6 (hops 0 15)

let test_fat_tree_invalid () =
  Alcotest.check_raises "odd k" (Invalid_argument "Builders.fat_tree: k must be even and >= 2")
    (fun () -> ignore (Builders.fat_tree 3))

let test_bcube () =
  let g = Builders.bcube ~n:4 ~level:1 in
  (* BCube_1 with n=4: 16 hosts, 2*4 = 8 switches, each host has 2 links. *)
  Alcotest.(check int) "hosts" 16 (Array.length (Graph.hosts g));
  Alcotest.(check int) "switches" 8 (Array.length (Graph.switches g));
  Alcotest.(check bool) "connected" true (Graph.connected g);
  Array.iter
    (fun h -> Alcotest.(check int) "host degree = level+1" 2 (Graph.degree_out g h))
    (Graph.hosts g);
  Array.iter
    (fun sw -> Alcotest.(check int) "switch degree = n" 4 (Graph.degree_out g sw))
    (Graph.switches g)

let test_bcube_level0 () =
  let g = Builders.bcube ~n:3 ~level:0 in
  Alcotest.(check int) "hosts" 3 (Array.length (Graph.hosts g));
  Alcotest.(check int) "switches" 1 (Array.length (Graph.switches g))

let test_dcell_level0 () =
  let g = Builders.dcell ~n:4 ~level:0 in
  Alcotest.(check int) "hosts" 4 (Array.length (Graph.hosts g));
  Alcotest.(check int) "one switch" 1 (Array.length (Graph.switches g));
  Alcotest.(check int) "cables" 4 (Graph.num_cables g)

let test_dcell_level1 () =
  (* DCell_1 with n=4: 5 sub-cells of 4 hosts = 20 hosts, 5 switches,
     level-0 cables 20 + full interconnection C(5,2) = 10. *)
  let g = Builders.dcell ~n:4 ~level:1 in
  Alcotest.(check int) "hosts" 20 (Array.length (Graph.hosts g));
  Alcotest.(check int) "switches" 5 (Array.length (Graph.switches g));
  Alcotest.(check int) "cables" 30 (Graph.num_cables g);
  Alcotest.(check bool) "connected" true (Graph.connected g);
  (* Every host has exactly one level-1 cross link: degree 2. *)
  Array.iter
    (fun h -> Alcotest.(check int) "host degree" 2 (Graph.degree_out g h))
    (Graph.hosts g)

let test_dcell_level2 () =
  let g = Builders.dcell ~n:2 ~level:2 in
  (* t0=2, t1=6, t2=7*6=42 hosts; 21 switches. *)
  Alcotest.(check int) "hosts" 42 (Array.length (Graph.hosts g));
  Alcotest.(check int) "switches" 21 (Array.length (Graph.switches g));
  Alcotest.(check bool) "connected" true (Graph.connected g);
  Array.iter
    (fun h -> Alcotest.(check int) "host degree = level+1" 3 (Graph.degree_out g h))
    (Graph.hosts g)

let test_dcell_guard () =
  Alcotest.(check bool) "explosion guard" true
    (try ignore (Builders.dcell ~n:10 ~level:3); false with Invalid_argument _ -> true)

let test_fat_tree_k6 () =
  let g = Builders.fat_tree 6 in
  Alcotest.(check int) "hosts" 54 (Array.length (Graph.hosts g));
  Alcotest.(check int) "switches" 45 (Array.length (Graph.switches g));
  Alcotest.(check bool) "connected" true (Graph.connected g)

let test_bcube_level2 () =
  let g = Builders.bcube ~n:2 ~level:2 in
  Alcotest.(check int) "hosts" 8 (Array.length (Graph.hosts g));
  Alcotest.(check int) "switches" 12 (Array.length (Graph.switches g));
  Alcotest.(check bool) "connected" true (Graph.connected g);
  Array.iter
    (fun h -> Alcotest.(check int) "host degree" 3 (Graph.degree_out g h))
    (Graph.hosts g)

let test_builders_invalid_args () =
  let invalid f = Alcotest.(check bool) "invalid" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  invalid (fun () -> Builders.line 1);
  invalid (fun () -> Builders.parallel ~links:0);
  invalid (fun () -> Builders.star ~leaves:1);
  invalid (fun () -> Builders.leaf_spine ~spines:0 ~leaves:1 ~hosts_per_leaf:1);
  invalid (fun () -> Builders.bcube ~n:1 ~level:0);
  invalid (fun () -> Builders.bcube ~n:2 ~level:(-1));
  invalid (fun () -> Builders.random_fabric ~switches:5 ~degree:3 ~hosts:2 ~seed:1);
  invalid (fun () -> Builders.random_fabric ~switches:4 ~degree:4 ~hosts:2 ~seed:1)

let test_random_fabric () =
  let g = Builders.random_fabric ~switches:10 ~degree:4 ~hosts:20 ~seed:1 in
  Alcotest.(check int) "hosts" 20 (Array.length (Graph.hosts g));
  Alcotest.(check int) "switches" 10 (Array.length (Graph.switches g));
  Alcotest.(check bool) "connected" true (Graph.connected g);
  Array.iter
    (fun sw ->
      (* degree 4 fabric links + attached hosts (2 per switch here) *)
      Alcotest.(check int) "switch degree" 6 (Graph.degree_out g sw))
    (Graph.switches g)

let test_random_fabric_deterministic () =
  let g1 = Builders.random_fabric ~switches:8 ~degree:3 ~hosts:8 ~seed:7 in
  let g2 = Builders.random_fabric ~switches:8 ~degree:3 ~hosts:8 ~seed:7 in
  let edges g =
    List.init (Graph.num_links g) (fun l -> (Graph.link_src g l, Graph.link_dst g l))
  in
  Alcotest.(check (list (pair int int))) "same edges" (edges g1) (edges g2)

let test_remove_cables () =
  let g = Builders.fat_tree 4 in
  let cables = Graph.num_cables g in
  (* Remove one aggregation-core cable (the last cable added). *)
  let victim = 2 * (cables - 1) in
  let g' = Graph.remove_cables g ~cables:[ victim ] in
  Alcotest.(check int) "one fewer cable" (cables - 1) (Graph.num_cables g');
  Alcotest.(check int) "same nodes" (Graph.num_nodes g) (Graph.num_nodes g');
  Alcotest.(check bool) "still connected" true (Graph.connected g');
  (* Identifying a cable by its backward link works too. *)
  let g'' = Graph.remove_cables g ~cables:[ victim + 1 ] in
  Alcotest.(check int) "backward id same effect" (cables - 1) (Graph.num_cables g'');
  Alcotest.(check bool) "unknown link raises" true
    (try ignore (Graph.remove_cables g ~cables:[ 99999 ]); false
     with Invalid_argument _ -> true)

let test_path_nodes_and_is_path () =
  let g = Builders.line 4 in
  match Paths.shortest_path g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "no path"
  | Some p ->
    Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3 ] (Graph.path_nodes g ~src:0 p);
    Alcotest.(check bool) "is_path" true (Graph.is_path g ~src:0 ~dst:3 p);
    Alcotest.(check bool) "wrong dst" false (Graph.is_path g ~src:0 ~dst:2 p);
    Alcotest.(check bool) "empty path same node" true (Graph.is_path g ~src:1 ~dst:1 [])

let test_dijkstra_weights () =
  (* Parallel links with different weights: picks the lighter one. *)
  let g = Builders.parallel ~links:2 in
  let weight l = if l = 0 then 5. else 1. in
  match Paths.shortest_path ~weight g ~src:0 ~dst:1 with
  | Some [ l ] -> Alcotest.(check bool) "uses cheap link" true (weight l = 1.)
  | _ -> Alcotest.fail "expected single-link path"

let test_dijkstra_negative_weight () =
  let g = Builders.line 3 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Paths.shortest_path ~weight:(fun _ -> -1.) g ~src:0 ~dst:2);
       false
     with Invalid_argument _ -> true)

let test_shortest_tree_unreachable () =
  (* Two disconnected cliques cannot be built with Builder (cables pair);
     instead ban all links to make dst unreachable. *)
  let g = Builders.line 3 in
  let tree = Paths.shortest_tree ~banned_links:(fun _ -> true) g ~src:0 in
  Alcotest.(check (option (list int))) "unreachable" None (Paths.extract_path g tree ~dst:2)

let test_k_shortest_fat_tree () =
  let g = Builders.fat_tree 4 in
  (* Cross-pod pair: exactly 4 disjoint 6-hop paths exist (one per core). *)
  let paths = Paths.k_shortest g ~k:4 ~src:0 ~dst:15 in
  Alcotest.(check int) "found 4" 4 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check bool) "valid path" true (Graph.is_path g ~src:0 ~dst:15 p);
      Alcotest.(check int) "6 hops" 6 (List.length p))
    paths;
  Alcotest.(check int) "all distinct" 4
    (List.length (List.sort_uniq compare paths))

let test_k_shortest_ordering () =
  let g = Builders.line 5 in
  (* On a line there is exactly one simple path. *)
  let paths = Paths.k_shortest g ~k:3 ~src:0 ~dst:4 in
  Alcotest.(check int) "single path" 1 (List.length paths)

let test_all_simple_paths () =
  let g = Builders.parallel ~links:3 in
  let paths = Paths.all_simple_paths g ~src:0 ~dst:1 in
  Alcotest.(check int) "three links, three paths" 3 (List.length paths);
  let g4 = Builders.fat_tree 4 in
  let cross = Paths.all_simple_paths ~max_hops:6 g4 ~src:0 ~dst:15 in
  Alcotest.(check int) "4 shortest cross-pod routes" 4 (List.length cross);
  let same_pod = Paths.all_simple_paths ~max_hops:4 g4 ~src:0 ~dst:2 in
  Alcotest.(check int) "2 same-pod routes plus none shorter" 2 (List.length same_pod)

let test_all_simple_paths_limit () =
  let g = Builders.fat_tree 4 in
  let paths = Paths.all_simple_paths ~limit:5 g ~src:0 ~dst:15 in
  Alcotest.(check int) "limit respected" 5 (List.length paths)

(* Property: in any random fabric, shortest paths found by Dijkstra with
   hop weights have minimal length among enumerated simple paths. *)
let prop_dijkstra_minimal =
  QCheck.Test.make ~name:"paths: dijkstra finds minimum-hop path" ~count:30
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 1000 st))
    (fun seed ->
      let g = Dcn_topology.Builders.random_fabric ~switches:6 ~degree:3 ~hosts:6 ~seed in
      let hosts = Graph.hosts g in
      let src = hosts.(0) and dst = hosts.(Array.length hosts - 1) in
      match Paths.shortest_path g ~src ~dst with
      | None -> false
      | Some p ->
        let enumerated = Paths.all_simple_paths ~max_hops:8 g ~src ~dst in
        enumerated = []
        || List.length p
           = List.fold_left (fun acc q -> min acc (List.length q)) max_int enumerated)

(* Property: reverse is a fixpoint-free involution matching endpoints. *)
let prop_reverse_involution =
  QCheck.Test.make ~name:"graph: reverse is an involution" ~count:50
    QCheck.(make (fun st -> 1 + QCheck.Gen.int_bound 1000 st))
    (fun seed ->
      let g = Dcn_topology.Builders.random_fabric ~switches:8 ~degree:3 ~hosts:4 ~seed in
      let ok = ref true in
      for l = 0 to Graph.num_links g - 1 do
        let r = Graph.reverse g l in
        if
          r = l
          || Graph.reverse g r <> l
          || Graph.link_src g r <> Graph.link_dst g l
          || Graph.link_dst g r <> Graph.link_src g l
        then ok := false
      done;
      !ok)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ( "topology/graph",
      [
        Alcotest.test_case "builder basic" `Quick test_builder_basic;
        Alcotest.test_case "self loop" `Quick test_builder_self_loop;
        Alcotest.test_case "builder reuse" `Quick test_builder_reuse;
        Alcotest.test_case "multigraph" `Quick test_multigraph;
        Alcotest.test_case "path nodes / is_path" `Quick test_path_nodes_and_is_path;
        Alcotest.test_case "remove cables" `Quick test_remove_cables;
        qt prop_reverse_involution;
      ] );
    ( "topology/builders",
      [
        Alcotest.test_case "line" `Quick test_line;
        Alcotest.test_case "star" `Quick test_star;
        Alcotest.test_case "leaf-spine" `Quick test_leaf_spine;
        Alcotest.test_case "fat-tree k=4" `Quick test_fat_tree_k4;
        Alcotest.test_case "fat-tree k=8 = paper network" `Quick
          test_fat_tree_k8_is_paper_network;
        Alcotest.test_case "fat-tree path lengths" `Quick test_fat_tree_path_lengths;
        Alcotest.test_case "fat-tree invalid" `Quick test_fat_tree_invalid;
        Alcotest.test_case "bcube" `Quick test_bcube;
        Alcotest.test_case "bcube level 0" `Quick test_bcube_level0;
        Alcotest.test_case "bcube level 2" `Quick test_bcube_level2;
        Alcotest.test_case "dcell level 0" `Quick test_dcell_level0;
        Alcotest.test_case "dcell level 1" `Quick test_dcell_level1;
        Alcotest.test_case "dcell level 2" `Quick test_dcell_level2;
        Alcotest.test_case "dcell guard" `Quick test_dcell_guard;
        Alcotest.test_case "fat-tree k=6" `Quick test_fat_tree_k6;
        Alcotest.test_case "invalid args" `Quick test_builders_invalid_args;
        Alcotest.test_case "random fabric" `Quick test_random_fabric;
        Alcotest.test_case "random fabric deterministic" `Quick
          test_random_fabric_deterministic;
      ] );
    ( "topology/paths",
      [
        Alcotest.test_case "dijkstra weights" `Quick test_dijkstra_weights;
        Alcotest.test_case "negative weight" `Quick test_dijkstra_negative_weight;
        Alcotest.test_case "unreachable" `Quick test_shortest_tree_unreachable;
        Alcotest.test_case "k-shortest fat-tree" `Quick test_k_shortest_fat_tree;
        Alcotest.test_case "k-shortest single path" `Quick test_k_shortest_ordering;
        Alcotest.test_case "all simple paths" `Quick test_all_simple_paths;
        Alcotest.test_case "enumeration limit" `Quick test_all_simple_paths_limit;
        qt prop_dijkstra_minimal;
      ] );
  ]
