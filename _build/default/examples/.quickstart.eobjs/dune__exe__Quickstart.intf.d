examples/quickstart.mli:
