examples/leaf_spine_stress.mli:
