examples/bcube_shuffle.mli:
