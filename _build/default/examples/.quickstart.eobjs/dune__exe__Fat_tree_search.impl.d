examples/fat_tree_search.ml: Dcn_core Dcn_flow Dcn_power Dcn_sim Dcn_topology Dcn_util Format List
