examples/fat_tree_search.mli:
