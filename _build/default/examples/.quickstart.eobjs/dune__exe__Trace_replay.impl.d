examples/trace_replay.ml: Array Dcn_core Dcn_flow Dcn_power Dcn_sim Dcn_topology Dcn_util Format List
