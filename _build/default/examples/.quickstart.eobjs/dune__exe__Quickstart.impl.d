examples/quickstart.ml: Dcn_core Dcn_flow Dcn_power Dcn_sched Dcn_sim Dcn_topology Format List
