examples/leaf_spine_stress.ml: Dcn_core Dcn_flow Dcn_power Dcn_sched Dcn_sim Dcn_topology Dcn_util Format List
